/**
 * @file
 * Behavioural tests of individual accelerator models beyond the
 * uniform end-to-end sweep: count-limited linked-list walks, MemBench
 * target/mixed modes, Reed-Solomon failure accounting, Bitcoin
 * difficulty handling, GRN reproducibility, and SSSP round/relaxation
 * accounting against the software reference.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "accel/algo/graph.hh"
#include "accel/algo/reed_solomon.hh"
#include "accel/algo/sha.hh"
#include "accel/crypto_accels.hh"
#include "accel/linkedlist_accel.hh"
#include "accel/membench_accel.hh"
#include "accel/signal_accels.hh"
#include "accel/sssp_accel.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

TEST(LinkedListModelTest, CountLimitStopsTheWalkEarly)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto layout = workload::buildLinkedList(h, 1000, 3);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead,
                  layout.head.value());
    h.writeAppReg(accel::LinkedlistAccel::kRegCount, 250);
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_EQ(h.progress(), 250u);
}

TEST(LinkedListModelTest, StrictlySerialOneOutstandingRead)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto layout = workload::buildLinkedList(h, 512, 4);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead,
                  layout.head.value());
    h.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
    sim::Tick t0 = sys.eq.now();
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    double per_node = static_cast<double>(sys.eq.now() - t0) / 512;
    // Serial pointer chasing cannot beat one round trip per node.
    EXPECT_GT(per_node, 400.0 * sim::kTickNs);
}

TEST(MembenchModelTest, TargetModeCompletesExactCount)
{
    System sys(makeOptimusConfig("MB", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    mem::Gva buf = h.dmaAlloc(1ULL << 20, 64);
    h.writeAppReg(accel::MembenchAccel::kRegBase, buf.value());
    h.writeAppReg(accel::MembenchAccel::kRegWset, 1ULL << 20);
    h.writeAppReg(accel::MembenchAccel::kRegMode,
                  accel::MembenchAccel::kMixed);
    h.writeAppReg(accel::MembenchAccel::kRegTarget, 5000);
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_EQ(h.result(), 5000u);
    auto &port = sys.platform.accel(0).dma();
    // Mixed mode alternates reads and writes.
    EXPECT_NEAR(static_cast<double>(port.readsIssued()),
                static_cast<double>(port.writesIssued()), 8.0);
}

TEST(MembenchModelTest, GapRegisterThrottlesThroughput)
{
    double rates[2];
    for (int i = 0; i < 2; ++i) {
        System sys(makeOptimusConfig("MB", 1));
        AccelHandle &h = sys.attach(0, 1ULL << 30);
        mem::Gva buf = h.dmaAlloc(1ULL << 20, 64);
        h.writeAppReg(accel::MembenchAccel::kRegBase, buf.value());
        h.writeAppReg(accel::MembenchAccel::kRegWset, 1ULL << 20);
        h.writeAppReg(accel::MembenchAccel::kRegTarget, 0);
        h.writeAppReg(accel::MembenchAccel::kRegGap,
                      i == 0 ? 0 : 64);
        h.start();
        sys.run(sys.eq.now() + 200 * sim::kTickUs);
        std::uint64_t p0 = sys.hv.peekProgress(h.vaccel());
        sys.run(sys.eq.now() + 400 * sim::kTickUs);
        rates[i] = static_cast<double>(
            sys.hv.peekProgress(h.vaccel()) - p0);
    }
    // Gap 64 at 400 MHz caps at one op per 160 ns.
    EXPECT_GT(rates[0], 4 * rates[1]);
}

TEST(RsdModelTest, UncorrectableCodewordsAreCountedAndZeroed)
{
    System sys(makeOptimusConfig("RSD", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);

    // Two codewords: one clean, one destroyed beyond t errors.
    algo::ReedSolomon rs;
    std::vector<std::uint8_t> stream(2 * 256, 0);
    std::uint8_t msg[algo::ReedSolomon::kK];
    for (std::size_t i = 0; i < sizeof(msg); ++i)
        msg[i] = static_cast<std::uint8_t>(i + 1);
    rs.encode(msg, stream.data());
    rs.encode(msg, stream.data() + 256);
    for (std::size_t i = 0; i < 40; ++i) // > 2t damage
        stream[256 + i * 5] ^= 0xa5;

    mem::Gva src = h.dmaAlloc(stream.size());
    mem::Gva dst = h.dmaAlloc(stream.size());
    h.memWrite(src, stream.data(), stream.size());
    h.writeAppReg(accel::stream_reg::kSrc, src.value());
    h.writeAppReg(accel::stream_reg::kDst, dst.value());
    h.writeAppReg(accel::stream_reg::kLen, stream.size());
    h.start();
    ASSERT_EQ(h.wait(), accel::Status::kDone);

    // Slot 0 decoded clean; slot 1 zero-filled.
    std::vector<std::uint8_t> out(algo::ReedSolomon::kK);
    h.memRead(dst, out.data(), out.size());
    EXPECT_EQ(0, std::memcmp(out.data(), msg, out.size()));
    h.memRead(dst + 256, out.data(), out.size());
    for (auto b : out)
        EXPECT_EQ(b, 0);
}

TEST(BtcModelTest, FindsTheFirstQualifyingNonce)
{
    System sys(makeOptimusConfig("BTC", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    std::vector<std::uint8_t> header(80, 0x42);
    std::memset(header.data() + 76, 0, 4);
    mem::Gva src = h.dmaAlloc(128);
    h.memWrite(src, header.data(), 80);
    h.writeAppReg(accel::BtcAccel::kRegSrc, src.value());
    h.writeAppReg(accel::BtcAccel::kRegStartNonce, 0);
    h.writeAppReg(accel::BtcAccel::kRegZeroBits, 8);
    h.start();
    ASSERT_EQ(h.wait(), accel::Status::kDone);

    // The winning nonce qualifies and no smaller nonce does.
    auto nonce = static_cast<std::uint32_t>(h.result());
    auto qualifies = [&](std::uint32_t n) {
        std::vector<std::uint8_t> hd = header;
        std::memcpy(hd.data() + 76, &n, 4);
        auto d = algo::Sha256::doubleHash(hd.data(), 80);
        return d[0] == 0;
    };
    EXPECT_TRUE(qualifies(nonce));
    for (std::uint32_t n = 0; n < nonce; ++n)
        ASSERT_FALSE(qualifies(n)) << n;
}

TEST(GrnModelTest, OutputIsBitExactAcrossRuns)
{
    std::vector<double> runs[2];
    for (int r = 0; r < 2; ++r) {
        System sys(makeOptimusConfig("GRN", 1));
        AccelHandle &h = sys.attach(0, 1ULL << 30);
        mem::Gva dst = h.dmaAlloc(1000 * 8);
        h.writeAppReg(accel::GrnAccel::kRegDst, dst.value());
        h.writeAppReg(accel::GrnAccel::kRegCount, 1000);
        h.writeAppReg(accel::GrnAccel::kRegSeed, 77);
        h.start();
        EXPECT_EQ(h.wait(), accel::Status::kDone);
        runs[r].resize(1000);
        h.memRead(dst, runs[r].data(), 8000);
    }
    EXPECT_EQ(runs[0], runs[1]);
}

TEST(SsspModelTest, RelaxationAndRoundCountsAreConsistent)
{
    System sys(makeOptimusConfig("SSSP", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto g = algo::makeRandomGraph(500, 5000, 63, 21);
    auto layout = workload::placeGraph(h, g, 0);
    workload::programSssp(h, layout);
    h.start();
    ASSERT_EQ(h.wait(), accel::Status::kDone);

    // Distances match Dijkstra; relaxations at least cover every
    // reachable vertex (each got its final value via >= 1 update).
    auto expect = algo::dijkstra(g, 0);
    std::vector<std::uint32_t> dist(g.numVertices());
    h.memRead(layout.dist, dist.data(), 4 * g.numVertices());
    EXPECT_EQ(dist, expect);

    std::uint64_t reachable = 0;
    for (std::uint32_t v = 1; v < g.numVertices(); ++v)
        reachable += expect[v] != algo::kDistInf ? 1 : 0;
    EXPECT_GE(h.result(), reachable);
}

TEST(SsspModelTest, WindowRegisterChangesRuntimeNotResult)
{
    auto g = algo::makeRandomGraph(300, 3000, 63, 22);
    std::vector<std::uint32_t> results[2];
    sim::Tick runtimes[2];
    int i = 0;
    for (std::uint32_t window : {2u, 64u}) {
        System sys(makeOptimusConfig("SSSP", 1));
        AccelHandle &h = sys.attach(0, 1ULL << 30);
        auto layout = workload::placeGraph(h, g, 0);
        workload::programSssp(h, layout);
        h.writeAppReg(accel::SsspAccel::kRegWindow, window);
        sim::Tick t0 = sys.eq.now();
        h.start();
        EXPECT_EQ(h.wait(), accel::Status::kDone);
        runtimes[i] = sys.eq.now() - t0;
        results[i].resize(g.numVertices());
        h.memRead(layout.dist, results[i].data(),
                  4 * g.numVertices());
        ++i;
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_GT(runtimes[0], runtimes[1]); // narrow window is slower
}

} // namespace
