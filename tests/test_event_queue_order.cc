/**
 * @file
 * Determinism tests for the calendar event queue.
 *
 * The queue promises execution in exact (tick, schedule-seq) order —
 * identical to a single sorted queue with FIFO tie-break — no matter
 * which internal level (near ring, far ring, overflow heap) an event
 * lands in or how often it migrates between levels as the window
 * advances. These tests pin that contract, including a randomized
 * differential check against a reference heap, so any future change
 * to the wheel geometry or migration logic that perturbs ordering
 * fails loudly here rather than as a silently different simulation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

using namespace optimus::sim;

namespace {

// Spans chosen to cross the queue's internal boundaries: slots are
// 2^11 ticks, the near window 2^21, the far window 2^29.
constexpr Tick kSlotSpan = Tick(1) << 11;
constexpr Tick kNearWindow = Tick(1) << 21;
constexpr Tick kFarWindow = Tick(1) << 29;

TEST(EventQueueOrder, SameTickFifoAcrossManyEvents)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave two ticks; each tick's events must run in the order
    // they were scheduled regardless of interleaving.
    for (int i = 0; i < 64; ++i) {
        eq.scheduleAt(100, [&order, i]() { order.push_back(i); });
        eq.scheduleAt(200, [&order, i]() { order.push_back(100 + i); });
    }
    eq.runAll();
    ASSERT_EQ(order.size(), 128u);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
        EXPECT_EQ(order[static_cast<std::size_t>(64 + i)], 100 + i);
    }
}

TEST(EventQueueOrder, ScheduleDuringExecutionSameTickRunsLast)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(50, [&]() {
        order.push_back(0);
        // Scheduled while tick 50 is draining: runs after every
        // already-queued tick-50 event (seq order), same tick.
        eq.scheduleAt(50, [&]() { order.push_back(3); });
    });
    eq.scheduleAt(50, [&]() { order.push_back(1); });
    eq.scheduleAt(50, [&]() { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueueOrder, ScheduleDuringExecutionEarlierInSlotStillSorts)
{
    EventQueue eq;
    std::vector<int> order;
    // Both ticks land in the same slot (span 2048). While tick 10 is
    // executing, schedule tick 20 and then tick 15; they must run as
    // 15 then 20 even though 20 was scheduled first.
    eq.scheduleAt(10, [&]() {
        order.push_back(10);
        eq.scheduleAt(20, [&]() { order.push_back(20); });
        eq.scheduleAt(15, [&]() { order.push_back(15); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{10, 15, 20}));
}

TEST(EventQueueOrder, RunUntilBoundaryIsInclusive)
{
    EventQueue eq;
    int at_limit = 0, past_limit = 0;
    eq.scheduleAt(1000, [&]() { ++at_limit; });
    eq.scheduleAt(1001, [&]() { ++past_limit; });
    EXPECT_EQ(eq.runUntil(1000), 1u);
    EXPECT_EQ(at_limit, 1);
    EXPECT_EQ(past_limit, 0);
    EXPECT_EQ(eq.now(), 1000u);
    // The past-limit event is still pending and runs on the next call.
    EXPECT_EQ(eq.runUntil(2000), 1u);
    EXPECT_EQ(past_limit, 1);
    EXPECT_EQ(eq.now(), 2000u);
}

TEST(EventQueueOrder, ScheduleEarlierTickAfterRunUntilStopsShort)
{
    // Regression: runUntil used to leave the next slot activated when
    // its events were past the limit; a later scheduleAt into an
    // earlier slot then ran *after* the stale cursor's event and
    // now() regressed.
    EventQueue eq;
    std::vector<Tick> order;
    eq.scheduleAt(5000, [&]() { order.push_back(eq.now()); });
    EXPECT_EQ(eq.runUntil(3000), 0u);
    EXPECT_EQ(eq.now(), 3000u);
    EXPECT_EQ(eq.nextEventTick(), 5000u);
    eq.scheduleAt(3500, [&]() { order.push_back(eq.now()); });
    EXPECT_EQ(eq.nextEventTick(), 3500u);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<Tick>{3500, 5000}));
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueueOrder, RunUntilMidSlotPartialDrainThenEarlierSchedule)
{
    // Same regression, with the interrupted slot partially drained:
    // 4100 and 5000 share a slot (span 2048); the limit stops the
    // drain between them, then 4300 arrives — earlier than the
    // still-pending 5000 and appended behind it in the re-packed
    // bucket, so activation must re-sort. Order and monotonic time
    // must hold.
    EventQueue eq;
    std::vector<Tick> order;
    auto rec = [&]() { order.push_back(eq.now()); };
    eq.scheduleAt(4100, rec);
    eq.scheduleAt(5000, rec);
    EXPECT_EQ(eq.runUntil(4200), 1u);
    EXPECT_EQ(eq.now(), 4200u);
    EXPECT_EQ(eq.nextEventTick(), 5000u);
    eq.scheduleAt(4300, rec);
    EXPECT_EQ(eq.nextEventTick(), 4300u);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<Tick>{4100, 4300, 5000}));
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueueOrder, RunUntilUntouchedActivationInLaterSlotReleased)
{
    // The stale activation can also be a slot runUntil activated but
    // never drained (events past the limit, slot span later than
    // now's): a subsequent schedule into an earlier slot must still
    // run first.
    EventQueue eq;
    std::vector<Tick> order;
    auto rec = [&]() { order.push_back(eq.now()); };
    eq.scheduleAt(4100, rec); // slot covering [4096, 6143]
    eq.scheduleAt(7000, rec); // next slot
    EXPECT_EQ(eq.runUntil(4200), 1u);
    eq.scheduleAt(5000, rec); // earlier slot than pending 7000
    eq.runAll();
    EXPECT_EQ(order, (std::vector<Tick>{4100, 5000, 7000}));
    EXPECT_EQ(eq.now(), 7000u);
}

TEST(EventQueueOrder, RunUntilInterleavedWithSchedulingStaysMonotonic)
{
    // Alternate runUntil windows with schedules landing between the
    // limit and the pending far event; now() must never regress.
    EventQueue eq;
    std::vector<Tick> order;
    auto rec = [&]() { order.push_back(eq.now()); };
    eq.scheduleAt(1000, rec);
    eq.scheduleAt(50000, rec);
    EXPECT_EQ(eq.runUntil(2500), 1u);
    eq.scheduleAt(3000, rec);
    EXPECT_EQ(eq.runUntil(10000), 1u);
    eq.scheduleAt(20000, rec);
    eq.runAll();
    EXPECT_EQ(order,
              (std::vector<Tick>{1000, 3000, 20000, 50000}));
    Tick prev = 0;
    for (Tick t : order) {
        EXPECT_LE(prev, t);
        prev = t;
    }
}

TEST(EventQueueOrder, RunUntilAdvancesTimeOnEmptyQueue)
{
    EventQueue eq;
    EXPECT_EQ(eq.runUntil(5000), 0u);
    EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueueOrder, FarRingAndHeapEventsComeBackInOrder)
{
    EventQueue eq;
    std::vector<std::uint64_t> order;
    // One event per level: near ring, far ring, overflow heap —
    // scheduled in reverse level order.
    std::vector<Tick> ticks = {
        2 * kFarWindow,           // heap
        kNearWindow + 5,          // far ring
        kSlotSpan + 3,            // near ring
        kFarWindow + kNearWindow, // far ring (outer edge)
        7,                        // near ring, first slot
    };
    for (Tick t : ticks)
        eq.scheduleAt(t, [&order, t]() { order.push_back(t); });
    eq.runAll();
    std::vector<Tick> expect = ticks;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(order, expect);
    EXPECT_EQ(eq.now(), 2 * kFarWindow);
}

TEST(EventQueueOrder, SameTickFifoSurvivesLevelMigration)
{
    EventQueue eq;
    std::vector<int> order;
    // All at one far-future tick, so every event migrates heap -> far
    // ring -> near ring before executing; seq order must survive.
    const Tick when = 3 * kFarWindow + 12345;
    for (int i = 0; i < 32; ++i)
        eq.scheduleAt(when, [&order, i]() { order.push_back(i); });
    eq.runAll();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueOrder, IdleJumpOverManyWindows)
{
    EventQueue eq;
    // Drain, then schedule far beyond every window from a late now():
    // the idle window slide must not strand or reorder anything.
    std::uint64_t fired = 0;
    eq.scheduleAt(10, [&]() { ++fired; });
    eq.runAll();
    eq.scheduleAt(100 * kFarWindow, [&]() { ++fired; });
    eq.scheduleAt(100 * kFarWindow + 1, [&]() { ++fired; });
    eq.runAll();
    EXPECT_EQ(fired, 3u);
    EXPECT_EQ(eq.now(), 100 * kFarWindow + 1);
}

/**
 * Randomized differential test: replay an identical schedule/execute
 * mix against a reference heap with explicit (tick, seq) keys. Each
 * executing event may schedule follow-ups at random offsets chosen to
 * exercise every level and every migration path of the calendar.
 */
TEST(EventQueueOrder, RandomizedDifferentialAgainstReferenceHeap)
{
    // Offsets cross slot, ring, and far-window boundaries.
    const Tick offsets[] = {
        0,          1,           17,          kSlotSpan - 1,
        kSlotSpan,  3 * kSlotSpan, kNearWindow - 1, kNearWindow,
        kNearWindow + kSlotSpan,  kFarWindow - 1, kFarWindow,
        2 * kFarWindow + 99,
    };
    constexpr int kSeeds = 5;
    constexpr std::uint64_t kMaxEvents = 20000;

    for (int seed = 1; seed <= kSeeds; ++seed) {
        // Reference: a plain min-heap on (when, seq).
        using Key = std::pair<Tick, std::uint64_t>;
        std::priority_queue<Key, std::vector<Key>, std::greater<Key>>
            ref;
        std::vector<Key> ref_order;
        {
            Rng rng(static_cast<std::uint64_t>(seed));
            std::uint64_t seq = 0;
            for (int i = 0; i < 40; ++i)
                ref.emplace(rng.next() % 3000, seq++);
            std::uint64_t executed = 0;
            while (!ref.empty() && executed < kMaxEvents) {
                Key k = ref.top();
                ref.pop();
                ref_order.push_back(k);
                ++executed;
                // Deterministic follow-up decisions from the RNG.
                std::uint64_t n = rng.next() % 3;
                for (std::uint64_t j = 0; j < n; ++j) {
                    Tick off = offsets[rng.next() % std::size(offsets)];
                    ref.emplace(k.first + off, seq++);
                }
            }
        }

        // Subject: the calendar queue making the same decisions.
        std::vector<Key> got_order;
        {
            Rng rng(static_cast<std::uint64_t>(seed));
            EventQueue eq;
            std::uint64_t seq = 0;
            std::uint64_t budget = kMaxEvents;
            // Self-referential scheduling helper.
            struct Ctx
            {
                EventQueue &eq;
                Rng &rng;
                std::uint64_t &seq;
                std::uint64_t &budget;
                std::vector<Key> &order;
                const Tick *offsets;
                std::size_t noffsets;
            } ctx{eq, rng, seq, budget, got_order,
                  offsets, std::size(offsets)};

            struct Fire
            {
                Ctx *c;
                std::uint64_t myseq;
                void
                operator()()
                {
                    if (c->budget == 0)
                        return;
                    --c->budget;
                    c->order.emplace_back(c->eq.now(), myseq);
                    std::uint64_t n = c->rng.next() % 3;
                    for (std::uint64_t j = 0; j < n; ++j) {
                        Tick off =
                            c->offsets[c->rng.next() % c->noffsets];
                        c->eq.scheduleIn(off, Fire{c, c->seq++});
                    }
                }
            };

            for (int i = 0; i < 40; ++i) {
                Tick when = rng.next() % 3000;
                eq.scheduleAt(when, Fire{&ctx, seq++});
            }
            eq.runAll();
        }

        ASSERT_EQ(got_order.size(), ref_order.size())
            << "seed " << seed;
        for (std::size_t i = 0; i < ref_order.size(); ++i) {
            ASSERT_EQ(got_order[i].first, ref_order[i].first)
                << "tick diverged at event " << i << ", seed " << seed;
            ASSERT_EQ(got_order[i].second, ref_order[i].second)
                << "seq diverged at event " << i << ", seed " << seed;
        }
    }
}

#ifdef NDEBUG
TEST(EventQueueOrder, ReleaseBuildClampsPastScheduling)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(100, [&]() {
        order.push_back(0);
        // Scheduling in the past is a model bug; release builds clamp
        // it to now() so long runs survive.
        eq.scheduleAt(40, [&]() { order.push_back(1); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), 100u);
}
#endif

TEST(InlineFunctionTest, SmallCapturesStayInline)
{
    struct Small
    {
        void *a;
        std::uint64_t b;
        void operator()() {}
    };
    struct Huge
    {
        unsigned char blob[kEventCaptureBytes + 8];
        void operator()() {}
    };
    struct OverAligned
    {
        alignas(32) double d[2];
        void operator()() {}
    };
    using Fn = InlineFunction<void()>;
    static_assert(Fn::fitsInline<Small>());
    static_assert(!Fn::fitsInline<Huge>());
    static_assert(!Fn::fitsInline<OverAligned>());
    // Oversized captures still work, via the heap fallback.
    int hit = 0;
    struct Big
    {
        unsigned char pad[kEventCaptureBytes];
        int *hit;
        void operator()() { ++*hit; }
    };
    Fn f(Big{{}, &hit});
    f();
    EXPECT_EQ(hit, 1);
}

TEST(InlineFunctionTest, NonTriviallyCopyableCapturesRelocateSafely)
{
    // Captures with interior self-pointers (std::string's SSO buffer)
    // used to be banned by comment only — the memcpy move silently
    // corrupted them. They now relocate through a real move, so an
    // event whose capture crosses every queue level (heap -> far ring
    // -> near ring, plus bucket growth moves) arrives intact.
    EventQueue eq;
    std::vector<std::string> seen;
    const std::string sso = "short";   // fits the SSO buffer
    const std::string big(40, 'x');    // heap-backed string
    for (Tick when :
         {Tick(7), kSlotSpan + 3, kNearWindow + 5, 2 * kFarWindow}) {
        eq.scheduleAt(when, [&seen, s = sso]() { seen.push_back(s); });
        eq.scheduleAt(when, [&seen, s = big]() { seen.push_back(s); });
    }
    eq.runAll();
    ASSERT_EQ(seen.size(), 8u);
    for (std::size_t i = 0; i < seen.size(); i += 2) {
        EXPECT_EQ(seen[i], sso);
        EXPECT_EQ(seen[i + 1], big);
    }
}

TEST(InlineFunctionTest, MoveRelocatesNonTrivialTargets)
{
    using Fn = InlineFunction<void()>;
    std::string out;
    Fn a([&out, s = std::string("relocated")]() { out = s; });
    Fn b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    Fn c;
    c = std::move(b);
    c();
    EXPECT_EQ(out, "relocated");
}

TEST(InlineFunctionTest, ConsumeRunsAndEmptiesInOneStep)
{
    int runs = 0;
    InlineFunction<void()> f([&runs]() { ++runs; });
    EXPECT_TRUE(static_cast<bool>(f));
    f.consume();
    EXPECT_EQ(runs, 1);
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(PeriodicEventTest, ArmIsIdempotentAndCancelKillsOccurrence)
{
    EventQueue eq;
    int fired = 0;
    PeriodicEvent ev;
    ev.bind(eq, [&]() { ++fired; });
    ev.schedule(100);
    ev.schedule(150); // no-op: already armed for the earlier tick 100
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);

    ev.schedule(200);
    ev.cancel(); // in-queue occurrence becomes a dead no-op
    eq.runAll();
    EXPECT_EQ(fired, 1);

    // Re-arming after a cancel works.
    ev.schedule(300);
    eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(PeriodicEventTest, EarlierArmWinsWhileArmed)
{
    // A producer waking a gated component with a sooner deadline must
    // not be silently delayed to the already-armed (later) tick.
    EventQueue eq;
    std::vector<Tick> fires;
    PeriodicEvent ev;
    ev.bind(eq, [&]() { fires.push_back(eq.now()); });
    ev.schedule(100);
    ev.schedule(40); // earlier: re-arms sooner, kills the 100 arm
    EXPECT_TRUE(ev.armed());
    eq.runAll();
    // Fires exactly once, at the earlier tick; the dead occurrence at
    // 100 drains as a no-op.
    EXPECT_EQ(fires, (std::vector<Tick>{40}));
    EXPECT_FALSE(ev.armed());

    // Re-arming from inside is unaffected: fire at 40 then 60.
    fires.clear();
    PeriodicEvent chain;
    chain.bind(eq, [&]() {
        fires.push_back(eq.now());
        if (fires.size() == 1)
            chain.schedule(eq.now() + 20);
    });
    chain.schedule(eq.now() + 10);
    eq.runAll();
    ASSERT_EQ(fires.size(), 2u);
    EXPECT_EQ(fires[1], fires[0] + 20);
}

struct MemberTarget
{
    int fired = 0;
    void fire() { ++fired; }
};

TEST(MemberEventTest, MatchesPeriodicEventProtocol)
{
    EventQueue eq;
    MemberTarget t;
    MemberEvent<MemberTarget, &MemberTarget::fire> ev;
    ev.bind(eq, &t);
    ev.schedule(100);
    ev.schedule(150); // no-op: armed for the earlier tick 100
    EXPECT_TRUE(ev.armed());
    eq.runAll();
    EXPECT_EQ(t.fired, 1);
    EXPECT_FALSE(ev.armed());

    // Earlier arm wins, as with PeriodicEvent.
    ev.schedule(eq.now() + 100);
    ev.schedule(eq.now() + 10);
    eq.runAll();
    EXPECT_EQ(t.fired, 2);

    ev.schedule(eq.now() + 50);
    ev.cancel();
    eq.runAll();
    EXPECT_EQ(t.fired, 2);

    ev.scheduleIn(10);
    eq.runAll();
    EXPECT_EQ(t.fired, 3);
}

} // namespace
