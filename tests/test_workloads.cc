/**
 * @file
 * Workload-generator properties and end-to-end size sweeps:
 * determinism per seed, scattered-list structure, odd (non-line-
 * multiple) stream lengths, and the wrap-around offset arithmetic of
 * page table slicing.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "accel/linkedlist_accel.hh"
#include "fpga/auditor.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"
#include "sim/rng.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

TEST(ScatteredListTest, NodesAreDistinctAndCircular)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto layout =
        workload::buildScatteredLinkedList(h, 8ULL << 20, 1000, 5);
    EXPECT_EQ(layout.nodes, 1000u);

    // Follow the chain: 1000 distinct line-aligned nodes, and the
    // 1000th hop returns to the head (circular).
    std::set<std::uint64_t> seen;
    std::uint64_t cur = layout.head.value();
    std::uint64_t checksum = 0;
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(cur % 64, 0u);
        EXPECT_TRUE(seen.insert(cur).second) << "revisit at " << i;
        accel::LinkedListNode node{};
        h.memRead(mem::Gva(cur), &node, sizeof(node));
        checksum += node.payload[0];
        cur = node.next;
    }
    EXPECT_EQ(cur, layout.head.value());
    EXPECT_EQ(checksum, layout.checksum);
}

TEST(ScatteredListTest, DeterministicPerSeed)
{
    System sys(makeOptimusConfig("LL", 2));
    AccelHandle &a = sys.attach(0, 1ULL << 30);
    AccelHandle &b = sys.attach(1, 1ULL << 30);
    auto la = workload::buildScatteredLinkedList(a, 1ULL << 20, 100,
                                                 9);
    auto lb = workload::buildScatteredLinkedList(b, 1ULL << 20, 100,
                                                 9);
    // Same seed: same structure (same checksum and head offset
    // within the respective regions).
    EXPECT_EQ(la.checksum, lb.checksum);
    EXPECT_EQ(la.head - a.vaccel().windowBase(),
              lb.head - b.vaccel().windowBase());
}

/** Streams of odd length must round-trip through every app. */
class OddSizeTest
    : public ::testing::TestWithParam<std::tuple<std::string,
                                                 std::uint64_t>>
{
};

TEST_P(OddSizeTest, NonLineMultipleLengthsWork)
{
    const auto &[app, bytes] = GetParam();
    System sys(makeOptimusConfig(app, 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto wl = workload::Workload::create(app, h, bytes, 77);
    wl->program();
    h.start();
    ASSERT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_TRUE(wl->verify());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OddSizeTest,
    ::testing::Combine(::testing::Values("MD5", "SHA", "GRN", "MB",
                                         "LL", "SW"),
                       ::testing::Values(1024, 100000, 333000)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               std::to_string(std::get<1>(info.param));
    });

TEST(WorkloadDeterminismTest, SameSeedSameResult)
{
    for (const std::string app : {"MD5", "SHA", "RSD", "SW"}) {
        std::uint64_t results[2];
        for (int run = 0; run < 2; ++run) {
            System sys(makeOptimusConfig(app, 1));
            AccelHandle &h = sys.attach(0, 1ULL << 30);
            auto wl = workload::Workload::create(app, h, 64 * 1024,
                                                 123);
            wl->program();
            h.start();
            EXPECT_EQ(h.wait(), accel::Status::kDone);
            results[run] = h.result();
        }
        EXPECT_EQ(results[0], results[1]) << app;
    }
}

/**
 * Page-table-slicing offset arithmetic: iova = gva + offset must
 * land in the slice for arbitrary window/slice placements, including
 * when the slice base is numerically below the window base (the
 * offset wraps mod 2^64).
 */
TEST(SlicingArithmeticTest, OffsetWrapsCorrectly)
{
    sim::EventQueue eq;
    std::vector<ccip::DmaTxnPtr> out;
    fpga::Auditor auditor(eq, 400, 0, 1);
    auditor.setUpstream(
        [&](ccip::DmaTxnPtr t) { out.push_back(std::move(t)); });

    sim::Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        std::uint64_t window_base =
            (rng.below(1ULL << 26)) << 21; // up to ~128 TB, 2M align
        std::uint64_t slice_base = (1 + rng.below(511)) *
                                   ((64ULL << 30) + (128ULL << 20));
        fpga::OffsetEntry e;
        e.valid = true;
        e.gvaBase = window_base;
        e.offset = slice_base - window_base; // mod 2^64 on purpose
        e.window = 64ULL << 30;
        auditor.setOffsetEntry(e);

        std::uint64_t in_window = rng.below(e.window - 64) & ~63ULL;
        auto t = std::make_shared<ccip::DmaTxn>();
        t->gva = mem::Gva(window_base + in_window);
        t->bytes = 64;
        out.clear();
        auditor.dmaFromAccel(t);
        eq.runAll();
        ASSERT_EQ(out.size(), 1u) << trial;
        EXPECT_EQ(out[0]->iova.value(), slice_base + in_window)
            << trial;
    }
}

TEST(SlicingArithmeticTest, EveryOffsetRejectsOutsideWindow)
{
    sim::EventQueue eq;
    fpga::Auditor auditor(eq, 400, 0, 1);
    auditor.setUpstream([](ccip::DmaTxnPtr) {
        FAIL() << "out-of-window DMA escaped the auditor";
    });

    fpga::OffsetEntry e;
    e.valid = true;
    e.gvaBase = 0x200000000000ULL;
    e.offset = (64ULL << 30) - e.gvaBase;
    e.window = 64ULL << 30;
    auditor.setOffsetEntry(e);

    sim::Rng rng(13);
    for (int trial = 0; trial < 200; ++trial) {
        // Below, above, or wildly outside the window.
        std::uint64_t gva;
        switch (trial % 3) {
          case 0:
            gva = rng.below(e.gvaBase);
            break;
          case 1:
            gva = e.gvaBase + e.window + rng.below(1ULL << 40);
            break;
          default:
            gva = rng.next();
            if (gva >= e.gvaBase && gva < e.gvaBase + e.window)
                gva = e.gvaBase + e.window + 64;
            break;
        }
        auto t = std::make_shared<ccip::DmaTxn>();
        t->gva = mem::Gva(gva & ~63ULL);
        t->bytes = 64;
        bool error = false;
        t->onComplete = [&](ccip::DmaTxn &d) { error = d.error; };
        auditor.dmaFromAccel(t);
        eq.runAll();
        EXPECT_TRUE(error) << "gva 0x" << std::hex << gva;
    }
    EXPECT_EQ(auditor.rejectedDmas(), 200u);
}

} // namespace
