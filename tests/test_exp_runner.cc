/**
 * @file
 * exp::Runner determinism contract: a scenario re-run in-process —
 * and run concurrently on a thread pool — must yield byte-identical
 * ResultRows and fingerprints. This is the regression net for the
 * context-locality invariant (hv::System touches nothing outside
 * itself), which the parallel experiment runner relies on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/builders.hh"
#include "exp/runner.hh"

using namespace optimus;

namespace {

/**
 * A mid-size simulation: four MemBench tenants through the full
 * OPTIMUS stack (mux tree, IOMMU, links, DRAM), fingerprinting
 * per-tenant progress and the final simulated time.
 */
exp::ResultRow
membenchScenario(const exp::RunContext &ctx)
{
    hv::System sys(hv::makeOptimusConfig("MB", 8));
    sys.platform.memory().setScratchWrites(true);

    std::vector<hv::AccelHandle *> handles;
    for (std::uint32_t j = 0; j < 4; ++j) {
        hv::AccelHandle &h = sys.attach(j, 2ULL << 30);
        exp::setupMembench(h, 4ULL << 20,
                           accel::MembenchAccel::kRead, 31 + j);
        handles.push_back(&h);
    }
    for (auto *h : handles)
        h->start();

    double ns = 0;
    auto ops = exp::measureWindow(sys, handles,
                                  ctx.scaled(50 * sim::kTickUs),
                                  ctx.scaled(150 * sim::kTickUs),
                                  &ns);
    exp::ResultRow row("membench_4t");
    std::uint64_t total = 0;
    for (std::uint64_t o : ops) {
        row.fp.add(o);
        total += o;
    }
    row.fp.add(sys.eq.now());
    row.sealFingerprint();
    row.count("ops", total);
    row.num("gbps", "%.2f", exp::gbps(total, ns));
    return row;
}

TEST(ExpRunner, RepeatedRunIsIdentical)
{
    exp::RunContext ctx;
    exp::ResultRow first = membenchScenario(ctx);
    exp::ResultRow second = membenchScenario(ctx);
    EXPECT_TRUE(exp::sameResults(first, second));
    EXPECT_EQ(first.fingerprint(), second.fingerprint());
    EXPECT_NE(first.fingerprint(), 0u);
}

TEST(ExpRunner, ConcurrentRunMatchesSerialRun)
{
    auto build = [](exp::Runner &r) {
        r.table("determinism", "test");
        // Several copies of the same simulation: under --jobs they
        // execute concurrently on different threads, so any shared
        // mutable state between Systems shows up as a diff here.
        for (int i = 0; i < 4; ++i)
            r.add("copy" + std::to_string(i), membenchScenario);
    };

    exp::Runner serial("t");
    build(serial);
    exp::Runner::Options o1;
    o1.quiet = true;
    o1.jobs = 1;
    ASSERT_EQ(serial.run(o1), 0);

    exp::Runner parallel("t");
    build(parallel);
    exp::Runner::Options o4 = o1;
    o4.jobs = 4;
    ASSERT_EQ(parallel.run(o4), 0);

    ASSERT_EQ(serial.results().size(), parallel.results().size());
    const auto &ts = serial.results()[0];
    const auto &tp = parallel.results()[0];
    ASSERT_EQ(ts.rows.size(), 4u);
    ASSERT_EQ(tp.rows.size(), 4u);
    for (std::size_t i = 0; i < ts.rows.size(); ++i) {
        EXPECT_TRUE(exp::sameResults(ts.rows[i], tp.rows[i]));
        EXPECT_EQ(ts.rows[i].fingerprint(),
                  tp.rows[i].fingerprint());
        // All copies simulate the same thing.
        EXPECT_EQ(ts.rows[i].fingerprint(),
                  ts.rows[0].fingerprint());
    }
    EXPECT_EQ(ts.fingerprint, tp.fingerprint);
}

TEST(ExpRunner, FilterSelectsByName)
{
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("alpha", [](const exp::RunContext &) {
        return exp::ResultRow("alpha").count("v", 1);
    });
    r.add("beta", [](const exp::RunContext &) {
        return exp::ResultRow("beta").count("v", 2);
    });

    exp::Runner::Options o;
    o.quiet = true;
    o.filter = "^bet";
    ASSERT_EQ(r.run(o), 0);
    ASSERT_EQ(r.results()[0].rows.size(), 1u);
    EXPECT_EQ(r.results()[0].rows[0].label, "beta");
}

TEST(ExpRunner, WallClockCellsAreOutsideTheContract)
{
    exp::ResultRow a("row");
    a.count("ops", 100).wall("wall_ms", "%.2f", 1.23);
    exp::ResultRow b("row");
    b.count("ops", 100).wall("wall_ms", "%.2f", 99.9);
    // Different wall-clock measurements, same simulated results:
    // equal under the determinism contract.
    EXPECT_TRUE(exp::sameResults(a, b));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    exp::ResultRow c("row");
    c.count("ops", 101).wall("wall_ms", "%.2f", 1.23);
    EXPECT_FALSE(exp::sameResults(a, c));
}

} // namespace
