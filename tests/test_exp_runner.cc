/**
 * @file
 * exp::Runner determinism contract: a scenario re-run in-process —
 * and run concurrently on a thread pool — must yield byte-identical
 * ResultRows and fingerprints. This is the regression net for the
 * context-locality invariant (hv::System touches nothing outside
 * itself), which the parallel experiment runner relies on.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/builders.hh"
#include "exp/runner.hh"

using namespace optimus;

namespace {

/**
 * A mid-size simulation: four MemBench tenants through the full
 * OPTIMUS stack (mux tree, IOMMU, links, DRAM), fingerprinting
 * per-tenant progress and the final simulated time.
 */
exp::ResultRow
membenchScenario(const exp::RunContext &ctx)
{
    hv::System sys(hv::makeOptimusConfig("MB", 8));
    sys.platform.memory().setScratchWrites(true);

    std::vector<hv::AccelHandle *> handles;
    for (std::uint32_t j = 0; j < 4; ++j) {
        hv::AccelHandle &h = sys.attach(j, 2ULL << 30);
        exp::setupMembench(h, 4ULL << 20,
                           accel::MembenchAccel::kRead, 31 + j);
        handles.push_back(&h);
    }
    for (auto *h : handles)
        h->start();

    double ns = 0;
    auto ops = exp::measureWindow(sys, handles,
                                  ctx.scaled(50 * sim::kTickUs),
                                  ctx.scaled(150 * sim::kTickUs),
                                  &ns);
    exp::ResultRow row("membench_4t");
    std::uint64_t total = 0;
    for (std::uint64_t o : ops) {
        row.fp.add(o);
        total += o;
    }
    row.fp.add(sys.eq.now());
    row.sealFingerprint();
    row.count("ops", total);
    row.num("gbps", "%.2f", exp::gbps(total, ns));
    return row;
}

TEST(ExpRunner, RepeatedRunIsIdentical)
{
    exp::RunContext ctx;
    exp::ResultRow first = membenchScenario(ctx);
    exp::ResultRow second = membenchScenario(ctx);
    EXPECT_TRUE(exp::sameResults(first, second));
    EXPECT_EQ(first.fingerprint(), second.fingerprint());
    EXPECT_NE(first.fingerprint(), 0u);
}

TEST(ExpRunner, ConcurrentRunMatchesSerialRun)
{
    auto build = [](exp::Runner &r) {
        r.table("determinism", "test");
        // Several copies of the same simulation: under --jobs they
        // execute concurrently on different threads, so any shared
        // mutable state between Systems shows up as a diff here.
        for (int i = 0; i < 4; ++i)
            r.add("copy" + std::to_string(i), membenchScenario);
    };

    exp::Runner serial("t");
    build(serial);
    exp::Runner::Options o1;
    o1.quiet = true;
    o1.jobs = 1;
    ASSERT_EQ(serial.run(o1), 0);

    exp::Runner parallel("t");
    build(parallel);
    exp::Runner::Options o4 = o1;
    o4.jobs = 4;
    ASSERT_EQ(parallel.run(o4), 0);

    ASSERT_EQ(serial.results().size(), parallel.results().size());
    const auto &ts = serial.results()[0];
    const auto &tp = parallel.results()[0];
    ASSERT_EQ(ts.rows.size(), 4u);
    ASSERT_EQ(tp.rows.size(), 4u);
    for (std::size_t i = 0; i < ts.rows.size(); ++i) {
        EXPECT_TRUE(exp::sameResults(ts.rows[i], tp.rows[i]));
        EXPECT_EQ(ts.rows[i].fingerprint(),
                  tp.rows[i].fingerprint());
        // All copies simulate the same thing.
        EXPECT_EQ(ts.rows[i].fingerprint(),
                  ts.rows[0].fingerprint());
    }
    EXPECT_EQ(ts.fingerprint, tp.fingerprint);
}

TEST(ExpRunner, FilterSelectsByName)
{
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("alpha", [](const exp::RunContext &) {
        return exp::ResultRow("alpha").count("v", 1);
    });
    r.add("beta", [](const exp::RunContext &) {
        return exp::ResultRow("beta").count("v", 2);
    });

    exp::Runner::Options o;
    o.quiet = true;
    o.filter = "^bet";
    ASSERT_EQ(r.run(o), 0);
    ASSERT_EQ(r.results()[0].rows.size(), 1u);
    EXPECT_EQ(r.results()[0].rows[0].label, "beta");
}

TEST(ExpRunner, ThrowingScenarioRecordsFailedRowAndContinues)
{
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("good_before", [](const exp::RunContext &) {
        return exp::ResultRow("good_before").count("v", 1);
    });
    r.add("boom", [](const exp::RunContext &) -> exp::ResultRow {
        throw std::runtime_error("injected failure");
    });
    r.add("good_after", [](const exp::RunContext &) {
        return exp::ResultRow("good_after").count("v", 2);
    });

    exp::Runner::Options o;
    o.quiet = true;
    // Nonzero exit (one failure), but the sweep ran to completion.
    EXPECT_EQ(r.run(o), 1);
    ASSERT_EQ(r.errors().size(), 1u);
    EXPECT_EQ(r.errors()[0], "boom: injected failure");

    // The failed scenario holds its declaration slot as a FAILED row,
    // so the table stays aligned and the reason is visible.
    const auto &rows = r.results()[0].rows;
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[1].label, "boom");
    ASSERT_EQ(rows[1].metrics.size(), 1u);
    EXPECT_EQ(rows[1].metrics[0].key, "status");
    EXPECT_EQ(rows[1].metrics[0].text, "FAILED: injected failure");
    EXPECT_EQ(rows[0].label, "good_before");
    EXPECT_EQ(rows[2].label, "good_after");
}

TEST(ExpRunner, FailFastStopsAfterFirstFailure)
{
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("boom", [](const exp::RunContext &) -> exp::ResultRow {
        throw std::runtime_error("injected failure");
    });
    r.add("never_runs", [](const exp::RunContext &) {
        return exp::ResultRow("never_runs").count("v", 1);
    });

    exp::Runner::Options o;
    o.quiet = true;
    o.failFast = true;
    EXPECT_NE(r.run(o), 0);
    // The failure aborted the sweep: only the FAILED row made it.
    ASSERT_EQ(r.results()[0].rows.size(), 1u);
    EXPECT_EQ(r.results()[0].rows[0].label, "boom");
}

TEST(ExpRunner, FaultsFlagReachesScenarios)
{
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("echo", [](const exp::RunContext &ctx) {
        return exp::ResultRow("echo").str("plan", ctx.faults);
    });

    exp::Runner::Options o;
    o.quiet = true;
    o.faults = "hang@0:at=1ms";
    ASSERT_EQ(r.run(o), 0);
    EXPECT_EQ(r.results()[0].rows[0].metrics[0].text,
              "hang@0:at=1ms");
}

TEST(ExpRunner, RepeatReportsMedianWallClockCells)
{
    // Each repeat produces the same deterministic cells but a
    // different wall-clock observation; --repeat must keep the
    // former byte-identical and report the median of the latter.
    auto counter = std::make_shared<int>(0);
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("timed", [counter](const exp::RunContext &) {
        double fake_wall = 10.0 * ++*counter; // 10, 20, 30
        return exp::ResultRow("timed").count("ops", 7).wall(
            "wall_ms", "%.1f", fake_wall);
    });

    exp::Runner::Options o;
    o.quiet = true;
    o.repeat = 3;
    ASSERT_EQ(r.run(o), 0);
    EXPECT_EQ(*counter, 3);
    const auto &row = r.results()[0].rows[0];
    ASSERT_EQ(row.metrics.size(), 2u);
    EXPECT_EQ(row.metrics[0].key, "ops");
    EXPECT_EQ(row.metrics[0].value, 7.0);
    EXPECT_EQ(row.metrics[1].key, "wall_ms");
    EXPECT_EQ(row.metrics[1].text, "20.0"); // the median repeat
}

TEST(ExpRunner, RepeatAssertsDeterministicCellsIdentical)
{
    // A scenario whose *deterministic* cells drift across repeats is
    // a determinism regression: --repeat must fail it.
    auto counter = std::make_shared<int>(0);
    exp::Runner r("t");
    r.table("tbl", "test");
    r.add("drifty", [counter](const exp::RunContext &) {
        return exp::ResultRow("drifty").count("ops", ++*counter);
    });

    exp::Runner::Options o;
    o.quiet = true;
    o.repeat = 2;
    EXPECT_EQ(r.run(o), 1);
    ASSERT_EQ(r.errors().size(), 1u);
    EXPECT_NE(r.errors()[0].find("differ between repeat"),
              std::string::npos);
}

TEST(ExpRunner, RepeatKeepsSimulationFingerprintsIdentical)
{
    exp::Runner once("t");
    once.table("tbl", "test");
    once.add("mb", membenchScenario);
    exp::Runner::Options o1;
    o1.quiet = true;
    ASSERT_EQ(once.run(o1), 0);

    exp::Runner thrice("t");
    thrice.table("tbl", "test");
    thrice.add("mb", membenchScenario);
    exp::Runner::Options o3 = o1;
    o3.repeat = 3;
    ASSERT_EQ(thrice.run(o3), 0);

    // Repeats re-run the simulation from scratch: fingerprints (and
    // the whole table) must match a single run exactly.
    EXPECT_EQ(once.results()[0].rows[0].fingerprint(),
              thrice.results()[0].rows[0].fingerprint());
    EXPECT_EQ(once.results()[0].fingerprint,
              thrice.results()[0].fingerprint);
}

TEST(ExpRunner, WallClockCellsAreOutsideTheContract)
{
    exp::ResultRow a("row");
    a.count("ops", 100).wall("wall_ms", "%.2f", 1.23);
    exp::ResultRow b("row");
    b.count("ops", 100).wall("wall_ms", "%.2f", 99.9);
    // Different wall-clock measurements, same simulated results:
    // equal under the determinism contract.
    EXPECT_TRUE(exp::sameResults(a, b));
    EXPECT_EQ(a.fingerprint(), b.fingerprint());

    exp::ResultRow c("row");
    c.count("ops", 101).wall("wall_ms", "%.2f", 1.23);
    EXPECT_FALSE(exp::sameResults(a, c));
}

} // namespace
