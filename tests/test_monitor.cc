/**
 * @file
 * Hardware-monitor tests: multiplexer-tree structure and round-robin
 * fairness, auditor address translation / isolation / tag filtering
 * (page table slicing's hardware half), the VCU management protocol,
 * and the resource model backing Table 2.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ccip/shell.hh"
#include "fpga/auditor.hh"
#include "fpga/hardware_monitor.hh"
#include "fpga/mmio_layout.hh"
#include "fpga/mux_tree.hh"
#include "fpga/resources.hh"
#include "iommu/iommu.hh"
#include "mem/host_memory.hh"
#include "mem/memory_controller.hh"
#include "sim/domain.hh"
#include "sim/event_queue.hh"
#include "sim/platform_params.hh"

using namespace optimus;
using namespace optimus::fpga;

namespace {

ccip::DmaTxnPtr
makeTxn(std::uint64_t gva, bool write = false)
{
    auto t = std::make_shared<ccip::DmaTxn>();
    t->gva = mem::Gva(gva);
    t->isWrite = write;
    t->bytes = 64;
    return t;
}

// ------------------------------------------------------------- mux tree

TEST(MuxTreeTest, DefaultEightLeafTreeHasThreeLevels)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    MuxTree tree(eq, p, 8, 2);
    EXPECT_EQ(tree.levels(), 3u);
    MuxTree t4(eq, p, 4, 2);
    EXPECT_EQ(t4.levels(), 2u);
    MuxTree t8w(eq, p, 8, 8);
    EXPECT_EQ(t8w.levels(), 1u);
    MuxTree t1(eq, p, 1, 2);
    EXPECT_EQ(t1.levels(), 1u);
}

TEST(MuxTreeTest, PacketsTraverseToRootWithPipelineLatency)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    MuxTree tree(eq, p, 8, 2);
    std::vector<sim::Tick> arrivals;
    tree.setRootSink([&](ccip::DmaTxnPtr) {
        arrivals.push_back(eq.now());
    });
    ASSERT_TRUE(tree.leafHasSpace(0));
    tree.reserveLeaf(0);
    tree.fromLeaf(0, makeTxn(0x1000));
    eq.runAll();
    ASSERT_EQ(arrivals.size(), 1u);
    // Three levels of per-level pipeline latency at 400 MHz.
    sim::Tick per_level = p.muxUpCyclesPerLevel *
                          sim::periodFromMhz(p.fpgaIfaceMhz);
    EXPECT_GE(arrivals[0], 3 * per_level);
    EXPECT_LE(arrivals[0], 3 * per_level + 6 * 2500);
}

/** Keeps one leaf's input saturated, honoring the credit protocol. */
class LeafFeeder
{
  public:
    LeafFeeder(MuxTree &tree, std::uint32_t leaf, int budget)
        : _tree(tree), _leaf(leaf), _budget(budget)
    {
        tree.setLeafWake(leaf, [this]() { pump(); });
        pump();
    }

    void
    pump()
    {
        while (_budget > 0 && _tree.leafHasSpace(_leaf)) {
            _tree.reserveLeaf(_leaf);
            auto t = makeTxn(0x1000);
            t->tag = static_cast<ccip::AccelTag>(_leaf);
            _tree.fromLeaf(_leaf, std::move(t));
            --_budget;
        }
    }

  private:
    MuxTree &_tree;
    std::uint32_t _leaf;
    int _budget;
};

TEST(MuxTreeTest, RoundRobinSharesRootBandwidthEqually)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    MuxTree tree(eq, p, 8, 2);
    std::map<std::uint16_t, int> per_tag;
    tree.setRootSink([&](ccip::DmaTxnPtr t) { ++per_tag[t->tag]; });

    // Saturate: every leaf offers 400 packets through the credit
    // protocol.
    std::vector<std::unique_ptr<LeafFeeder>> feeders;
    for (std::uint32_t leaf = 0; leaf < 8; ++leaf)
        feeders.push_back(
            std::make_unique<LeafFeeder>(tree, leaf, 400));

    // Run for exactly 1600 root cycles: room for half the packets.
    eq.runUntil(1600 * sim::periodFromMhz(p.fpgaIfaceMhz));
    int total = 0;
    for (auto &[tag, n] : per_tag)
        total += n;
    ASSERT_GT(total, 1000);
    // Fairness: each of the 8 leaves gets 1/8 +- one packet-ish.
    for (auto &[tag, n] : per_tag) {
        EXPECT_NEAR(n, total / 8.0, 3.0) << "leaf " << tag;
    }
}

TEST(MuxTreeTest, SingleActiveLeafGetsFullBandwidth)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    MuxTree tree(eq, p, 8, 2);
    int delivered = 0;
    tree.setRootSink([&](ccip::DmaTxnPtr) { ++delivered; });
    LeafFeeder feeder(tree, 3, 100);
    eq.runAll();
    EXPECT_EQ(delivered, 100);
    // The sole active leaf was never throttled below 1 pkt/cycle
    // (plus pipeline depth).
    EXPECT_LE(eq.now(), (100 + 40) * 2500u);
}

TEST(MuxTreeTest, CreditsBoundInFlightPackets)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    MuxTree tree(eq, p, 8, 2);
    int delivered = 0;
    tree.setRootSink([&](ccip::DmaTxnPtr) { ++delivered; });

    // Without consuming credits the leaf accepts only kQueueDepth
    // packets before reporting full.
    int accepted = 0;
    while (tree.leafHasSpace(0) && accepted < 100) {
        tree.reserveLeaf(0);
        ++accepted;
    }
    EXPECT_EQ(accepted,
              static_cast<int>(MuxNode::kQueueDepth));
}

TEST(MuxTreeTest, DownPathBroadcastsAfterLatency)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    MuxTree tree(eq, p, 8, 2);
    sim::Tick delivered_at = 0;
    tree.setDownSink([&](ccip::DmaTxnPtr) { delivered_at = eq.now(); });
    tree.down(makeTxn(0));
    eq.runAll();
    EXPECT_EQ(delivered_at, tree.downLatency());
}

// -------------------------------------------------------------- auditor

class AuditorFixture : public ::testing::Test
{
  protected:
    AuditorFixture() : auditor(eq, 400, 3, 1)
    {
        OffsetEntry e;
        e.valid = true;
        e.gvaBase = 0x100000000000ULL;
        e.offset = 0x20000000000ULL - e.gvaBase; // slice at 2 TB
        e.window = 64ULL << 30;
        auditor.setOffsetEntry(e);
        auditor.setUpstream(
            [this](ccip::DmaTxnPtr t) { forwarded.push_back(t); });
    }

    sim::EventQueue eq;
    Auditor auditor;
    std::vector<ccip::DmaTxnPtr> forwarded;
};

TEST_F(AuditorFixture, TranslatesGvaToIovaAndTags)
{
    auto t = makeTxn(0x100000000040ULL);
    auditor.dmaFromAccel(t);
    eq.runAll();
    ASSERT_EQ(forwarded.size(), 1u);
    EXPECT_EQ(forwarded[0]->iova.value(), 0x20000000040ULL);
    EXPECT_EQ(forwarded[0]->tag, 3);
}

TEST_F(AuditorFixture, RejectsDmaBelowWindow)
{
    bool error = false;
    auto t = makeTxn(0x0fff00000000ULL);
    t->onComplete = [&](ccip::DmaTxn &d) { error = d.error; };
    auditor.dmaFromAccel(t);
    eq.runAll();
    EXPECT_TRUE(forwarded.empty());
    EXPECT_TRUE(error);
    EXPECT_EQ(auditor.rejectedDmas(), 1u);
}

TEST_F(AuditorFixture, RejectsDmaPastWindowEnd)
{
    // One byte past the 64 GB window.
    auto t = makeTxn(0x100000000000ULL + (64ULL << 30) - 63);
    bool error = false;
    t->onComplete = [&](ccip::DmaTxn &d) { error = d.error; };
    auditor.dmaFromAccel(t);
    eq.runAll();
    EXPECT_TRUE(error);
}

TEST_F(AuditorFixture, LastInWindowLineIsAccepted)
{
    auto t = makeTxn(0x100000000000ULL + (64ULL << 30) - 64);
    auditor.dmaFromAccel(t);
    eq.runAll();
    EXPECT_EQ(forwarded.size(), 1u);
}

TEST_F(AuditorFixture, InvalidEntryRejectsEverything)
{
    auditor.setOffsetEntry(OffsetEntry{});
    auto t = makeTxn(0x100000000000ULL);
    bool error = false;
    t->onComplete = [&](ccip::DmaTxn &d) { error = d.error; };
    auditor.dmaFromAccel(t);
    eq.runAll();
    EXPECT_TRUE(error);
}

TEST_F(AuditorFixture, DownstreamTagFilter)
{
    struct Dev : AccelDevice
    {
        int responses = 0;
        void dmaResponse(ccip::DmaTxnPtr) override { ++responses; }
        std::uint64_t mmioRead(std::uint64_t) override { return 0; }
        void mmioWrite(std::uint64_t, std::uint64_t) override {}
        void hardReset() override {}
    } dev;
    auditor.setDevice(&dev);

    auto mine = makeTxn(0);
    mine->tag = 3;
    auto other = makeTxn(0);
    other->tag = 5;
    auditor.deliverDown(mine);
    auditor.deliverDown(other);
    eq.runAll();
    EXPECT_EQ(dev.responses, 1);
    EXPECT_EQ(auditor.discardedResponses(), 1u);
}

// ------------------------------------------------ monitor + VCU protocol

class MonitorFixture : public ::testing::Test
{
  protected:
    std::uint64_t
    vcuRead(std::uint64_t reg)
    {
        std::uint64_t out = 0;
        ccip::MmioOp op;
        op.isWrite = false;
        op.offset = kVcuMmioBase + reg;
        op.onComplete = [&](std::uint64_t v) { out = v; };
        shell.mmioFromHost(std::move(op));
        sched.run();
        return out;
    }

    void
    vcuWrite(std::uint64_t reg, std::uint64_t value)
    {
        ccip::MmioOp op;
        op.isWrite = true;
        op.offset = kVcuMmioBase + reg;
        op.value = value;
        shell.mmioFromHost(std::move(op));
        sched.run();
    }

    sim::DomainSet domains{1};
    sim::EventQueue &eq = domains.queue(0);
    sim::PlatformParams params;
    mem::HostMemory memory{4ULL << 30};
    mem::MemoryController memctl{eq, params};
    iommu::Iommu iommu{eq, params};
    ccip::Shell shell{domains, 0, 0, params, memory, memctl, iommu};
    HardwareMonitor monitor{eq, params, shell, 4, 2};
    sim::EpochScheduler sched{domains, 1};
};

TEST_F(MonitorFixture, VcuIdentification)
{
    EXPECT_EQ(vcuRead(vcu_reg::kMagic), vcu_reg::kMagicValue);
    EXPECT_EQ(vcuRead(vcu_reg::kNumAccels), 4u);
    EXPECT_EQ(vcuRead(vcu_reg::kCompat), 1u);
}

TEST_F(MonitorFixture, OffsetTableProgrammingReachesAuditor)
{
    vcuWrite(vcu_reg::kOffsetIndex, 2);
    vcuWrite(vcu_reg::kOffsetGvaBase, 0x7000000000ULL);
    vcuWrite(vcu_reg::kOffsetValue, 0x1000000000ULL);
    vcuWrite(vcu_reg::kOffsetWindow, 64ULL << 30);
    vcuWrite(vcu_reg::kOffsetCommit, 1);

    const OffsetEntry &e = monitor.auditor(2).offsetEntry();
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.gvaBase, 0x7000000000ULL);
    EXPECT_EQ(e.offset, 0x1000000000ULL);
    EXPECT_EQ(e.window, 64ULL << 30);
    // Other auditors untouched.
    EXPECT_FALSE(monitor.auditor(0).offsetEntry().valid);
}

TEST_F(MonitorFixture, ResetTablePulsesSelectedAccelerators)
{
    struct Dev : AccelDevice
    {
        int resets = 0;
        void dmaResponse(ccip::DmaTxnPtr) override {}
        std::uint64_t mmioRead(std::uint64_t) override { return 0; }
        void mmioWrite(std::uint64_t, std::uint64_t) override {}
        void hardReset() override { ++resets; }
    };
    Dev devs[4];
    for (std::uint32_t i = 0; i < 4; ++i)
        monitor.attachAccelerator(i, &devs[i]);

    vcuWrite(vcu_reg::kResetTable, 0b0101);
    EXPECT_EQ(devs[0].resets, 1);
    EXPECT_EQ(devs[1].resets, 0);
    EXPECT_EQ(devs[2].resets, 1);
    EXPECT_EQ(devs[3].resets, 0);
}

TEST_F(MonitorFixture, AccelMmioRoutedByPageAndIsolated)
{
    struct Dev : AccelDevice
    {
        std::uint64_t last_reg = ~0ULL;
        std::uint64_t last_val = 0;
        void dmaResponse(ccip::DmaTxnPtr) override {}
        std::uint64_t mmioRead(std::uint64_t r) override
        {
            return r + 1000;
        }
        void
        mmioWrite(std::uint64_t r, std::uint64_t v) override
        {
            last_reg = r;
            last_val = v;
        }
        void hardReset() override {}
    };
    Dev devs[4];
    for (std::uint32_t i = 0; i < 4; ++i)
        monitor.attachAccelerator(i, &devs[i]);

    ccip::MmioOp op;
    op.isWrite = true;
    op.offset = accelMmioBase(1) + 0x40;
    op.value = 77;
    shell.mmioFromHost(std::move(op));
    sched.run();
    EXPECT_EQ(devs[1].last_reg, 0x40u);
    EXPECT_EQ(devs[1].last_val, 77u);
    EXPECT_EQ(devs[0].last_reg, ~0ULL);
    EXPECT_EQ(devs[2].last_reg, ~0ULL);
}

TEST_F(MonitorFixture, OutOfRangeMmioReadsAsAllOnes)
{
    std::uint64_t got = 0;
    ccip::MmioOp op;
    op.isWrite = false;
    op.offset = accelMmioBase(3) + kAccelMmioBytes + 8; // past slots
    op.onComplete = [&](std::uint64_t v) { got = v; };
    shell.mmioFromHost(std::move(op));
    sched.run();
    EXPECT_EQ(got, ~0ULL);
    EXPECT_EQ(monitor.droppedMmios(), 1u);
}

// ------------------------------------------------------------ resources

TEST(ResourceModelTest, Table2CalibrationPointsAreExact)
{
    // n = 1 reproduces the pass-through column; n = 8 the OPTIMUS
    // column, for every app.
    for (const auto &app : ResourceModel::apps()) {
        EXPECT_NEAR(ResourceModel::appAlm(app, 1), app.almPt, 1e-9)
            << app.name;
        EXPECT_NEAR(ResourceModel::appAlm(app, 8), app.almOpt8, 1e-6)
            << app.name;
        EXPECT_NEAR(ResourceModel::appBram(app, 1), app.bramPt, 1e-9)
            << app.name;
        EXPECT_NEAR(ResourceModel::appBram(app, 8), app.bramOpt8,
                    1e-6)
            << app.name;
    }
}

TEST(ResourceModelTest, MonitorMatchesPaperAtDefaultConfig)
{
    EXPECT_NEAR(ResourceModel::monitorAlm(8, 2), 6.16, 1e-9);
    EXPECT_NEAR(ResourceModel::monitorBram(8, 2), 0.48, 1e-9);
    // Fewer accelerators need a smaller monitor.
    EXPECT_LT(ResourceModel::monitorAlm(2, 2),
              ResourceModel::monitorAlm(8, 2));
}

TEST(ResourceModelTest, TreeNodeCounts)
{
    EXPECT_EQ(ResourceModel::treeNodes(8, 2), 7u); // 4 + 2 + 1
    EXPECT_EQ(ResourceModel::treeNodes(4, 2), 3u);
    EXPECT_EQ(ResourceModel::treeNodes(8, 8), 1u);
    EXPECT_EQ(ResourceModel::treeNodes(1, 2), 1u);
}

TEST(ResourceModelTest, FlatEightWayMuxCannotClose400Mhz)
{
    // The design-forcing constraint from Section 5: binary nodes
    // pass 400 MHz, a flat 8-way multiplexer does not.
    EXPECT_GE(ResourceModel::maxMuxFreqMhz(2), 400.0);
    EXPECT_LT(ResourceModel::maxMuxFreqMhz(8), 400.0);
}

TEST(ResourceModelTest, LookupKnowsAllFourteenApps)
{
    EXPECT_EQ(ResourceModel::apps().size(), 14u);
    EXPECT_EQ(std::string(ResourceModel::lookup("LL").name), "LL");
    EXPECT_EQ(ResourceModel::lookup("MD5").freqMhz, 100u);
    EXPECT_EQ(ResourceModel::lookup("MB").freqMhz, 400u);
    EXPECT_DEATH(ResourceModel::lookup("NOPE"), "unknown");
}

} // namespace
