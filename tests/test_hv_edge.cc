/**
 * @file
 * Hypervisor edge cases and failure injection: concurrent
 * virtual-accelerator creation racing on the VCU's staged registers,
 * DMA faults surfacing as job errors, guest soft reset semantics,
 * completion-handler delivery, and migration error paths.
 */

#include <gtest/gtest.h>

#include <set>

#include "accel/linkedlist_accel.hh"
#include "accel/sssp_accel.hh"
#include "accel/streaming_accelerator.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

TEST(VcuSerializationTest, ConcurrentSchedulingCommitsBothEntries)
{
    // Two tenants created back-to-back: their offset-table
    // programming sequences share the VCU's staged registers and
    // must not interleave (regression test for the serialized
    // management queue).
    System sys(makeOptimusConfig("LL", 8));
    std::vector<AccelHandle *> handles;
    for (std::uint32_t i = 0; i < 8; ++i)
        handles.push_back(&sys.attach(i, 1ULL << 30));
    handles[0]->pumpUntil([&]() {
        for (std::uint32_t i = 0; i < 8; ++i) {
            if (!sys.platform.monitor()
                     ->auditor(i)
                     .offsetEntry()
                     .valid) {
                return false;
            }
        }
        return true;
    });

    std::set<std::uint64_t> slice_bases;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const auto &e =
            sys.platform.monitor()->auditor(i).offsetEntry();
        EXPECT_EQ(e.window, sys.platform.params().sliceBytes) << i;
        // gvaBase + offset = slice base; all eight distinct.
        slice_bases.insert(e.gvaBase + e.offset);
    }
    EXPECT_EQ(slice_bases.size(), 8u);
}

TEST(FaultInjectionTest, UnregisteredWindowAddressErrorsTheJob)
{
    // Point AES at a reserved-but-never-registered part of its own
    // window: the auditor admits it (in-window), the IOMMU faults,
    // and the job must surface ERROR rather than hang.
    System sys(makeOptimusConfig("AES", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    mem::Gva hole = h.vaccel().windowBase() + (1ULL << 30);
    h.writeAppReg(accel::stream_reg::kSrc, hole.value());
    h.writeAppReg(accel::stream_reg::kDst, hole.value());
    h.writeAppReg(accel::stream_reg::kLen, 4096);
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kError);
    EXPECT_GT(sys.platform.iommu().faults(), 0u);
}

TEST(FaultInjectionTest, JobRestartsCleanlyAfterError)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);

    // First job: walk into an unregistered hole -> ERROR.
    mem::Gva hole = h.vaccel().windowBase() + (2ULL << 30);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead, hole.value());
    h.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kError);

    // Second job on the same virtual accelerator: valid list, DONE.
    auto layout = workload::buildLinkedList(h, 200, 9);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead,
                  layout.head.value());
    h.reset();
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_EQ(h.result(), layout.checksum);
}

TEST(CompletionHandlerTest, FiresOncePerCompletionWithStatus)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto layout = workload::buildLinkedList(h, 100, 10);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead,
                  layout.head.value());

    int calls = 0;
    accel::Status seen = accel::Status::kIdle;
    h.vaccel().setCompletionHandler([&](accel::Status st) {
        ++calls;
        seen = st;
    });
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(seen, accel::Status::kDone);
}

TEST(SoftResetTest, ClearsVisibleStateButKeepsRegisters)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto layout = workload::buildLinkedList(h, 5000, 11);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead,
                  layout.head.value());
    h.start();
    sys.run(sys.eq.now() + 100 * sim::kTickUs);
    ASSERT_EQ(sys.hv.peekStatus(h.vaccel()),
              accel::Status::kRunning);

    h.reset();
    EXPECT_EQ(sys.hv.peekStatus(h.vaccel()), accel::Status::kIdle);
    // Registers survive a soft reset; the job can be restarted.
    EXPECT_EQ(h.mmioRead(accel::reg::appReg(
                  accel::LinkedlistAccel::kRegHead)),
              layout.head.value());
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_EQ(h.result(), layout.checksum);
}

TEST(MigrationEdgeTest, MigrateToSameSlotIsRejected)
{
    System sys(makeOptimusConfig("LL", 2));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    bool result = true;
    sys.hv.migrate(h.vaccel(), 0, [&](bool ok) { result = ok; });
    EXPECT_FALSE(result);
}

TEST(MigrationEdgeTest, PassthroughCannotMigrate)
{
    System sys(makePassthroughConfig("LL"));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    bool result = true;
    sys.hv.migrate(h.vaccel(), 0, [&](bool ok) { result = ok; });
    EXPECT_FALSE(result);
}

TEST(StateSizeTest, SsspStateSizeTracksGraphSize)
{
    // STATE_SIZE is register-dependent for SSSP (frontier capacity
    // scales with the vertex count) — the guest reads it after
    // programming, as the driver flow prescribes.
    System sys(makeOptimusConfig("SSSP", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    h.writeAppReg(accel::SsspAccel::kRegNvert, 1000);
    std::uint64_t small = h.mmioRead(accel::reg::kStateSize);
    h.writeAppReg(accel::SsspAccel::kRegNvert, 100000);
    std::uint64_t large = h.mmioRead(accel::reg::kStateSize);
    EXPECT_GT(large, small);
    EXPECT_GE(large, 8ULL * 100000);
}

} // namespace
