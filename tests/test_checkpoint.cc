/**
 * @file
 * Device-level checkpoint/restore round-trip for every benchmark
 * accelerator family: a job is preempted mid-flight directly at the
 * device (kPreempt, drain, kSaved), captured with
 * Accelerator::checkpoint(), and re-planted with restore() into a
 * fresh accelerator instance on a second System whose guest memory
 * was overwritten with the source's DMA window image. The resumed
 * job's result, progress, and verified output must be identical to
 * an uninterrupted reference run — this is exactly the contract the
 * fleet migration layer depends on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;

namespace {

constexpr std::uint64_t kBytes = 256 * 1024;
constexpr std::uint64_t kSeed = 5;

struct Prepared
{
    hv::System sys;
    hv::AccelHandle *handle;
    std::unique_ptr<hv::workload::Workload> wl;

    explicit Prepared(const std::string &app)
        : sys(hv::makeOptimusConfig(app, 1))
    {
        handle = &sys.attach(0, 1ULL << 30);
        wl = hv::workload::Workload::create(app, *handle, kBytes,
                                            kSeed);
        wl->program();
        handle->setupStateBuffer();
        handle->start();
    }

    accel::Accelerator &dev() { return sys.platform.accel(0); }
};

class CheckpointTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CheckpointTest, RestoredJobMatchesUninterruptedRun)
{
    const std::string app = GetParam();

    // Reference: the same job, never interrupted.
    Prepared ref(app);
    ASSERT_EQ(ref.handle->wait(), accel::Status::kDone) << app;
    ASSERT_TRUE(ref.wl->verify()) << app;
    const std::uint64_t ref_result = ref.handle->result();
    const std::uint64_t ref_progress = ref.handle->progress();
    ASSERT_GT(ref_progress, 0u) << app;

    // Source: identical job, preempted at the device as soon as it
    // shows forward progress.
    Prepared src(app);
    src.handle->pumpUntil(
        [&]() { return src.dev().progress() > 0; });
    // Most apps are genuinely mid-flight here; a few (e.g. SW) post
    // their first PROGRESS bump coarsely, so partial progress is not
    // asserted — the round-trip contract is identical either way.
    src.dev().mmioWrite(accel::reg::kCtrl, accel::ctrl::kPreempt);
    src.handle->pumpUntil([&]() {
        return src.dev().status() == accel::Status::kSaved;
    });
    accel::Accelerator::Checkpoint ck = src.dev().checkpoint();

    // Destination: same platform and workload layout. Start then
    // immediately preempt the scratch job so the slot is scheduled
    // (offset table programmed) but the pipeline is quiescent, then
    // overwrite the window with the source image and adopt the
    // checkpoint.
    Prepared dst(app);
    dst.handle->pumpUntil([&]() {
        return dst.dev().status() == accel::Status::kRunning;
    });
    dst.dev().mmioWrite(accel::reg::kCtrl, accel::ctrl::kPreempt);
    dst.handle->pumpUntil([&]() {
        return dst.dev().status() == accel::Status::kSaved;
    });

    const std::uint64_t base = src.handle->vaccel()
                                   .windowBase()
                                   .value();
    ASSERT_EQ(base, dst.handle->vaccel().windowBase().value());
    const std::uint64_t size = src.handle->heap().registeredBytes();
    ASSERT_EQ(size, dst.handle->heap().registeredBytes()) << app;
    std::vector<std::uint8_t> image(size);
    src.handle->memRead(mem::Gva(base), image.data(), size);
    dst.handle->memWrite(mem::Gva(base), image.data(), size);

    dst.dev().restore(ck);
    EXPECT_EQ(dst.handle->wait(), accel::Status::kDone) << app;
    EXPECT_EQ(dst.handle->result(), ref_result) << app;
    EXPECT_EQ(dst.handle->progress(), ref_progress) << app;
    EXPECT_TRUE(dst.wl->verify()) << app << " output mismatch";
    // The destination device really did the remaining work.
    EXPECT_GT(dst.dev().dma().readsIssued() +
                  dst.dev().dma().writesIssued(),
              0u)
        << app;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CheckpointTest,
    ::testing::Values("AES", "MD5", "SHA", "FIR", "GRN", "RSD", "SW",
                      "GAU", "GRS", "SBL", "SSSP", "BTC", "MB", "LL"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

/** A checkpoint taken after completion restores straight to DONE. */
TEST(CheckpointTest, CompletedJobRestoresToDone)
{
    Prepared ref("SHA");
    ASSERT_EQ(ref.handle->wait(), accel::Status::kDone);
    accel::Accelerator::Checkpoint ck = ref.dev().checkpoint();
    EXPECT_EQ(ck.status, accel::Status::kDone);

    Prepared dst("SHA");
    dst.handle->pumpUntil([&]() {
        return dst.dev().status() == accel::Status::kRunning;
    });
    dst.dev().mmioWrite(accel::reg::kCtrl, accel::ctrl::kPreempt);
    dst.handle->pumpUntil([&]() {
        return dst.dev().status() == accel::Status::kSaved;
    });
    const std::uint64_t base =
        ref.handle->vaccel().windowBase().value();
    const std::uint64_t size = ref.handle->heap().registeredBytes();
    std::vector<std::uint8_t> image(size);
    ref.handle->memRead(mem::Gva(base), image.data(), size);
    dst.handle->memWrite(mem::Gva(base), image.data(), size);

    dst.dev().restore(ck);
    EXPECT_EQ(dst.handle->wait(), accel::Status::kDone);
    EXPECT_EQ(dst.handle->result(), ref.handle->result());
}

} // namespace
