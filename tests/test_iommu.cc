/**
 * @file
 * IOMMU and IOTLB tests: the direct-mapped set geometry the paper
 * reverse-engineers (bits 21-29 for 2 MB pages), conflict behaviour
 * that motivates the 128 MB inter-slice gap, page-walk timing and
 * queueing, and fault reporting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "iommu/iommu.hh"
#include "iommu/iotlb.hh"
#include "sim/event_queue.hh"
#include "sim/platform_params.hh"

using namespace optimus;
using namespace optimus::iommu;
using optimus::mem::Hpa;
using optimus::mem::Iova;

namespace {

TEST(IotlbTest, SetIndexUses2MPageBits21To29)
{
    Iotlb tlb(512, mem::kPage2M);
    // Bits below 21 do not affect the set.
    EXPECT_EQ(tlb.setIndex(Iova(0)), tlb.setIndex(Iova(0x1fffff)));
    // Bit 21 is the lowest index bit.
    EXPECT_EQ(tlb.setIndex(Iova(1ULL << 21)), 1u);
    EXPECT_EQ(tlb.setIndex(Iova(5ULL << 21)), 5u);
    // Index wraps at 512 sets: pages 2^9 apart conflict
    // (p1 == p2 mod 2^9, exactly the paper's conflict rule).
    EXPECT_EQ(tlb.setIndex(Iova(0)), tlb.setIndex(Iova(512ULL << 21)));
}

TEST(IotlbTest, SetIndexUses4KPageBits12To20)
{
    Iotlb tlb(512, mem::kPage4K);
    EXPECT_EQ(tlb.setIndex(Iova(0)), tlb.setIndex(Iova(0xfff)));
    EXPECT_EQ(tlb.setIndex(Iova(1ULL << 12)), 1u);
    EXPECT_EQ(tlb.setIndex(Iova(0)),
              tlb.setIndex(Iova(512ULL << 12)));
}

TEST(IotlbTest, HitAfterInsertMissBefore)
{
    Iotlb tlb(512, mem::kPage2M);
    EXPECT_FALSE(tlb.lookup(Iova(0x12345678)).has_value());
    EXPECT_EQ(tlb.misses(), 1u);
    tlb.insert(Iova(0x12200000), Hpa(0x40000000));
    auto hit = tlb.lookup(Iova(0x12345678));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->value(), 0x40000000u + 0x145678u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(IotlbTest, ConflictingPagesEvictEachOther)
{
    Iotlb tlb(512, mem::kPage2M);
    Iova a(0);
    Iova b(512ULL << 21); // same set index as a
    tlb.insert(a, Hpa(0x1000000));
    tlb.insert(b, Hpa(0x2000000));
    EXPECT_EQ(tlb.conflictEvictions(), 1u);
    EXPECT_FALSE(tlb.lookup(a).has_value()); // evicted
    EXPECT_TRUE(tlb.lookup(b).has_value());
}

TEST(IotlbTest, The128MGapSeparatesSliceSetIndices)
{
    // The conflict-mitigation design point: 64 GB slices are exact
    // multiples of the 1 GB IOTLB reach, so equal page offsets in
    // different slices collide; a 128 MB gap shifts the set index by
    // 64 sets per slice.
    Iotlb tlb(512, mem::kPage2M);
    std::uint64_t slice = 64ULL << 30;
    std::uint64_t gap = 128ULL << 20;
    // Without the gap: same page offset in every slice collides.
    EXPECT_EQ(tlb.setIndex(Iova(1 * slice)),
              tlb.setIndex(Iova(2 * slice)));
    // With the gap: distinct sets for the eight accelerators.
    for (std::uint64_t i = 1; i < 8; ++i) {
        EXPECT_NE(tlb.setIndex(Iova(1 * (slice + gap))),
                  tlb.setIndex(Iova((i + 1) * (slice + gap))))
            << "slices 0 and " << i;
    }
    EXPECT_EQ(tlb.setIndex(Iova(2 * (slice + gap))) -
                  tlb.setIndex(Iova(1 * (slice + gap))),
              64u);
}

TEST(IotlbTest, InvalidateAllAndSingle)
{
    Iotlb tlb(512, mem::kPage2M);
    tlb.insert(Iova(0), Hpa(0));
    tlb.insert(Iova(1ULL << 21), Hpa(mem::kPage2M));
    tlb.invalidate(Iova(0x100)); // covers page 0
    EXPECT_FALSE(tlb.lookup(Iova(0)).has_value());
    EXPECT_TRUE(tlb.lookup(Iova(1ULL << 21)).has_value());
    tlb.invalidateAll();
    EXPECT_FALSE(tlb.lookup(Iova(1ULL << 21)).has_value());
}

class IommuFixture : public ::testing::Test
{
  protected:
    IommuFixture() : iommu(eq, params) {}

    sim::EventQueue eq;
    sim::PlatformParams params;
    Iommu iommu{eq, params};
};

TEST_F(IommuFixture, HitIsFastMissPaysWalk)
{
    iommu.pageTable().map(Iova(0), Hpa(mem::kPage2M));

    sim::Tick first_done = 0;
    iommu.translate(Iova(0x40), false, [&](TranslationResult r) {
        EXPECT_FALSE(r.fault);
        EXPECT_EQ(r.hpa.value(), mem::kPage2M + 0x40);
        first_done = eq.now();
    });
    eq.runAll();
    // First access misses: full walk latency.
    EXPECT_GE(first_done, params.pageWalkLatency);

    sim::Tick second_done = 0;
    sim::Tick start = eq.now();
    iommu.translate(Iova(0x80), false, [&](TranslationResult r) {
        EXPECT_FALSE(r.fault);
        second_done = eq.now() - start;
    });
    eq.runAll();
    // Second access hits: a couple of fabric cycles.
    EXPECT_LT(second_done, 20 * sim::kTickNs);
}

TEST_F(IommuFixture, UnmappedAccessFaults)
{
    int faults_seen = 0;
    iommu.setFaultHandler(
        [&](Iova, bool) { ++faults_seen; });
    bool fault_result = false;
    iommu.translate(Iova(0xdead000000), true,
                    [&](TranslationResult r) {
                        fault_result = r.fault;
                    });
    eq.runAll();
    EXPECT_TRUE(fault_result);
    EXPECT_EQ(faults_seen, 1);
    EXPECT_EQ(iommu.faults(), 1u);
}

TEST_F(IommuFixture, ReadOnlyPageFaultsOnWrite)
{
    iommu.pageTable().map(Iova(0), Hpa(mem::kPage2M),
                          mem::PagePerms{true, false});
    bool read_fault = true;
    bool write_fault = false;
    iommu.translate(Iova(0), false, [&](TranslationResult r) {
        read_fault = r.fault;
    });
    iommu.translate(Iova(0), true, [&](TranslationResult r) {
        write_fault = r.fault;
    });
    eq.runAll();
    EXPECT_FALSE(read_fault);
    EXPECT_TRUE(write_fault);
}

TEST_F(IommuFixture, ConcurrentWalksQueueBeyondWalkerCapacity)
{
    // Map eight pages; fire eight concurrent misses. With two
    // concurrent walkers, completions arrive in four waves.
    std::vector<sim::Tick> done;
    for (int i = 0; i < 8; ++i) {
        iommu.pageTable().map(Iova(i * mem::kPage2M),
                              Hpa((i + 1) * mem::kPage2M));
    }
    for (int i = 0; i < 8; ++i) {
        iommu.translate(Iova(i * mem::kPage2M), false,
                        [&](TranslationResult r) {
                            EXPECT_FALSE(r.fault);
                            done.push_back(eq.now());
                        });
    }
    eq.runAll();
    ASSERT_EQ(done.size(), 8u);
    EXPECT_NEAR(static_cast<double>(done.front()),
                static_cast<double>(params.pageWalkLatency), 1000.0);
    // The last completion waited behind three walk generations.
    EXPECT_GE(done.back(), 4 * params.pageWalkLatency);
    EXPECT_EQ(iommu.walks(), 8u);
}

TEST_F(IommuFixture, SetPageBytesRebuildsStructures)
{
    iommu.pageTable().map(Iova(0), Hpa(mem::kPage2M));
    iommu.setPageBytes(mem::kPage4K);
    EXPECT_EQ(iommu.pageBytes(), mem::kPage4K);
    EXPECT_EQ(iommu.pageTable().size(), 0u); // mappings discarded
    EXPECT_EQ(iommu.iotlb().pageBytes(), mem::kPage4K);
}

} // namespace
