/**
 * @file
 * DMA heap allocator tests: alignment, growth-by-registration,
 * coalescing, and a randomized property sweep asserting that live
 * allocations never overlap and freed memory is reused.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hv/system.hh"
#include "sim/rng.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

class HeapFixture : public ::testing::Test
{
  protected:
    HeapFixture()
        : sys(makeOptimusConfig("LL", 1)),
          handle(sys.attach(0, 1ULL << 30))
    {
    }

    System sys;
    AccelHandle &handle;
};

TEST_F(HeapFixture, AllocationsAreCacheLineAligned)
{
    for (std::uint64_t size : {1ULL, 63ULL, 64ULL, 65ULL, 4097ULL}) {
        mem::Gva g = handle.dmaAlloc(size);
        EXPECT_EQ(g.value() % 64, 0u) << size;
    }
}

TEST_F(HeapFixture, CustomAlignmentRespected)
{
    mem::Gva g = handle.dmaAlloc(100, 4096);
    EXPECT_EQ(g.value() % 4096, 0u);
    mem::Gva h2 = handle.dmaAlloc(100, 1ULL << 20);
    EXPECT_EQ(h2.value() % (1ULL << 20), 0u);
}

TEST_F(HeapFixture, GrowthRegistersWholePages)
{
    EXPECT_EQ(handle.heap().registeredBytes(), 0u);
    handle.dmaAlloc(100);
    EXPECT_EQ(handle.heap().registeredBytes(), mem::kPage2M);
    handle.dmaAlloc(3ULL << 20); // forces growth past one page
    EXPECT_GE(handle.heap().registeredBytes(), 3 * mem::kPage2M);
    EXPECT_EQ(handle.heap().registeredBytes() % mem::kPage2M, 0u);
}

TEST_F(HeapFixture, FreeCoalescesAndReuses)
{
    mem::Gva a = handle.dmaAlloc(64);
    mem::Gva b = handle.dmaAlloc(64);
    mem::Gva c = handle.dmaAlloc(64);
    (void)c;
    handle.dmaFree(a);
    handle.dmaFree(b); // coalesces with a
    mem::Gva d = handle.dmaAlloc(128);
    EXPECT_EQ(d.value(), a.value()); // the merged hole fits 128
}

TEST_F(HeapFixture, RandomizedAllocFreeNeverOverlaps)
{
    sim::Rng rng(2026);
    std::map<std::uint64_t, std::uint64_t> live; // start -> size
    std::vector<mem::Gva> handles_vec;

    for (int step = 0; step < 400; ++step) {
        bool do_alloc = live.empty() || rng.below(100) < 60;
        if (do_alloc) {
            std::uint64_t size = 64 + rng.below(32768);
            mem::Gva g = handle.dmaAlloc(size);
            // No overlap with any live allocation.
            auto it = live.upper_bound(g.value());
            if (it != live.begin()) {
                auto prev = std::prev(it);
                ASSERT_LE(prev->first + prev->second, g.value());
            }
            if (it != live.end()) {
                std::uint64_t rounded = (size + 63) & ~63ULL;
                ASSERT_LE(g.value() + rounded, it->first);
            }
            live[g.value()] = (size + 63) & ~63ULL;
            handles_vec.push_back(g);
        } else {
            std::uint64_t pick = rng.below(handles_vec.size());
            mem::Gva victim = handles_vec[pick];
            handles_vec.erase(handles_vec.begin() +
                              static_cast<std::ptrdiff_t>(pick));
            live.erase(victim.value());
            handle.dmaFree(victim);
        }
    }
    EXPECT_EQ(handle.heap().allocatedBlocks(), handles_vec.size());
}

TEST_F(HeapFixture, FreeingUnknownBlockPanics)
{
    handle.dmaAlloc(64);
    EXPECT_DEATH(handle.dmaFree(handle.vaccel().windowBase() + 640000),
                 "unallocated");
}

TEST_F(HeapFixture, AllocatedMemoryIsFpgaVisible)
{
    // Every allocation's backing page is registered: the IOPT can
    // translate the whole block.
    mem::Gva g = handle.dmaAlloc(5ULL << 20);
    const auto &hv = sys.hv;
    (void)hv;
    auto &iommu = sys.platform.iommu();
    for (std::uint64_t off = 0; off < (5ULL << 20);
         off += mem::kPage2M) {
        // Compose the slicing offset exactly as the auditor would.
        const auto &e =
            sys.platform.monitor()->auditor(0).offsetEntry();
        ASSERT_TRUE(e.valid);
        mem::Iova iova(g.value() + off + e.offset);
        EXPECT_TRUE(iommu.pageTable().translate(iova).has_value())
            << off;
    }
}

} // namespace
