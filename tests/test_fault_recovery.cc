/**
 * @file
 * Detection and recovery tests: the hypervisor watchdog quarantines
 * vaccels that stop making progress (pipeline hangs and wedged MMIO
 * alike), the slot is recovered through the VCU reset path, the
 * guest observes its own fault through ERR_STATUS and can restart,
 * co-tenants keep their scheduler shares and bit-identical results,
 * and auditor offset entries are re-stamped across temporal context
 * switches — including after a slot reset.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "accel/membench_accel.hh"
#include "exp/builders.hh"
#include "fault/fault_injector.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

// ------------------------------------------------------- watchdog

TEST(WatchdogTest, QuarantinesHungVaccelAndRecoversSlot)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj = exp::installFaults(
        sys, "hang@0:at=20us;watchdog:deadline=50us");

    AccelHandle &h = sys.attach(0);
    exp::setupMembench(h, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    h.setupStateBuffer();
    h.start();
    sys.run(sys.eq.now() + 500 * sim::kTickUs);

    // Detection: no forward progress within the deadline.
    EXPECT_EQ(sys.hv.watchdogFires(), 1u);
    EXPECT_EQ(sys.hv.peekStatus(h.vaccel()), accel::Status::kError);
    EXPECT_TRUE(h.vaccel().quarantined());
    EXPECT_NE(h.errorStatus() & accel::errst::kWatchdog, 0u);

    // Recovery: the slot was reset through the VCU path, clearing
    // the wedge at the device.
    EXPECT_EQ(sys.hv.slotResets(), 1u);
    EXPECT_FALSE(sys.platform.accel(0).wedged());
}

TEST(WatchdogTest, GuestRestartClearsErrorAndRuns)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj = exp::installFaults(
        sys, "hang@0:at=20us;watchdog:deadline=50us");

    AccelHandle &h = sys.attach(0);
    exp::setupMembench(h, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    h.setupStateBuffer();
    h.start();
    sys.run(sys.eq.now() + 500 * sim::kTickUs);
    ASSERT_EQ(sys.hv.peekStatus(h.vaccel()), accel::Status::kError);

    // The guest acknowledges the fault by starting again: ERR_STATUS
    // clears, the vaccel leaves quarantine, and the (reset) device
    // makes progress once more.
    h.start();
    EXPECT_EQ(h.errorStatus(), 0u);
    EXPECT_FALSE(h.vaccel().quarantined());
    std::uint64_t before = sys.hv.peekProgress(h.vaccel());
    sys.run(sys.eq.now() + 200 * sim::kTickUs);
    EXPECT_GT(sys.hv.peekProgress(h.vaccel()), before);
    EXPECT_EQ(sys.hv.peekStatus(h.vaccel()),
              accel::Status::kRunning);
}

TEST(WatchdogTest, MmioWedgeIsDetectedByHealthProbe)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj = exp::installFaults(
        sys, "wedge_mmio@0:at=20us;watchdog:deadline=50us");

    AccelHandle &h = sys.attach(0);
    exp::setupMembench(h, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    h.setupStateBuffer();
    h.start();
    sys.run(sys.eq.now() + 500 * sim::kTickUs);

    // The datapath may still move, but the hypervisor's MMIO health
    // probe reads all-ones: the tenant is quarantined anyway.
    EXPECT_EQ(sys.hv.watchdogFires(), 1u);
    EXPECT_NE(h.errorStatus() & accel::errst::kWatchdog, 0u);
    EXPECT_FALSE(sys.platform.accel(0).mmioWedged());
}

TEST(WatchdogTest, CoTenantOnSameSlotTakesOver)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj = exp::installFaults(
        sys, "hang@0:at=20us;watchdog:deadline=50us");

    AccelHandle &a = sys.attach(0);
    AccelHandle &c = sys.attachShared(0);
    exp::setupMembench(a, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    a.setupStateBuffer();
    exp::setupMembench(c, 1ULL << 20, accel::MembenchAccel::kRead,
                       4, /*gap=*/64);
    c.setupStateBuffer();

    a.start();
    c.start();
    sys.run(sys.eq.now() + 500 * sim::kTickUs);

    // A (scheduled first) hung and was quarantined; the reset slot
    // went to its co-tenant through the full reattach path.
    EXPECT_EQ(sys.hv.peekStatus(a.vaccel()), accel::Status::kError);
    EXPECT_TRUE(sys.hv.isScheduled(c.vaccel()));
    std::uint64_t before = sys.hv.peekProgress(c.vaccel());
    sys.run(sys.eq.now() + 200 * sim::kTickUs);
    EXPECT_GT(sys.hv.peekProgress(c.vaccel()), before);
}

// -------------------------------------------------- tenant isolation

/**
 * The acceptance scenario: tenant A (endless MemBench, slot 0) is
 * hung and quarantined; tenant B (fixed SHA job, slot 1) must finish
 * with a bit-identical digest and a completion time within 5% of the
 * fault-free run, while A observes the fault via ERR_STATUS.
 */
struct IsolationOut
{
    std::uint64_t digest = 0;
    bool verified = false;
    double jobUs = 0;
    std::uint64_t aErr = 0;
};

IsolationOut
runPair(const std::string &plan)
{
    PlatformConfig cfg;
    cfg.mode = FabricMode::kOptimus;
    cfg.apps = {"MB", "SHA"};
    System sys(cfg);
    auto inj = exp::installFaults(sys, plan);

    AccelHandle &a = sys.attach(0, 2ULL << 30);
    AccelHandle &b = sys.attach(1, 2ULL << 30);
    exp::setupMembench(a, 4ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/256);
    a.setupStateBuffer();
    auto wl =
        workload::Workload::create("SHA", b, 2ULL << 20, 5);
    wl->program();
    b.setupStateBuffer();

    a.start();
    sim::Tick t0 = sys.eq.now();
    b.start();
    accel::Status bs = b.wait();
    sys.run(sys.eq.now() + 1 * sim::kTickMs);

    IsolationOut out;
    out.jobUs = static_cast<double>(sys.eq.now() - t0) /
                static_cast<double>(sim::kTickUs);
    out.digest = bs == accel::Status::kDone ? b.result() : 0;
    out.verified = bs == accel::Status::kDone && wl->verify();
    out.aErr = a.vaccel().errorStatus();
    return out;
}

TEST(IsolationTest, HangedTenantCannotPerturbCoTenant)
{
    IsolationOut base = runPair("");
    IsolationOut faulted =
        runPair("hang@0:at=50us;watchdog:deadline=100us");

    ASSERT_TRUE(base.verified);
    ASSERT_TRUE(faulted.verified);
    // Bit-identical answer...
    EXPECT_EQ(faulted.digest, base.digest);
    // ...within 5% of the fault-free completion time...
    EXPECT_LE(std::abs(faulted.jobUs - base.jobUs),
              0.05 * base.jobUs);
    // ...while the faulted tenant sees its own quarantine and the
    // healthy tenant sees nothing.
    EXPECT_NE(faulted.aErr & accel::errst::kWatchdog, 0u);
    EXPECT_EQ(base.aErr, 0u);
}

// ------------------------------------- auditor offset re-stamping

/** The auditor's offset entry must always describe the tenant that
 *  is *currently* scheduled on the slot.  Co-tenants within one VM
 *  share a windowBase, so the discriminating field is the offset
 *  into the per-vaccel page-table slice. */
void
expectEntryMatches(System &sys, const VirtualAccel &v)
{
    const fpga::OffsetEntry &e =
        sys.platform.monitor()->auditor(v.slot()).offsetEntry();
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.gvaBase, v.windowBase().value());
    EXPECT_EQ(e.offset, v.sliceIovaBase() - v.windowBase().value());
}

TEST(AuditorRestampTest, OffsetEntryFollowsTemporalSwitches)
{
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 100 * sim::kTickUs; // fast rotation
    System sys(makeOptimusConfig("MB", 1, p));

    AccelHandle &a = sys.attach(0, 1ULL << 30);
    AccelHandle &b = sys.attachShared(0);
    exp::setupMembench(a, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    a.setupStateBuffer();
    exp::setupMembench(b, 1ULL << 20, accel::MembenchAccel::kRead,
                       4, /*gap=*/64);
    b.setupStateBuffer();
    a.start();
    b.start();

    // Across several slices, whenever either tenant holds the slot
    // the offset table must carry *its* window — a stale entry would
    // misdirect (or wrongly pass) the other tenant's DMAs.
    int checkedA = 0;
    int checkedB = 0;
    for (int i = 0; i < 40; ++i) {
        sys.run(sys.eq.now() + 30 * sim::kTickUs);
        if (sys.hv.isScheduled(a.vaccel())) {
            expectEntryMatches(sys, a.vaccel());
            ++checkedA;
        } else if (sys.hv.isScheduled(b.vaccel())) {
            expectEntryMatches(sys, b.vaccel());
            ++checkedB;
        }
    }
    EXPECT_GT(checkedA, 0);
    EXPECT_GT(checkedB, 0);
    EXPECT_GT(sys.hv.contextSwitches(), 2u);
}

TEST(AuditorRestampTest, OffsetEntryRestampedAfterSlotReset)
{
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 100 * sim::kTickUs;
    System sys(makeOptimusConfig("MB", 1, p));
    auto inj = exp::installFaults(
        sys, "hang@0:at=20us;watchdog:deadline=50us");

    AccelHandle &a = sys.attach(0, 1ULL << 30);
    AccelHandle &b = sys.attachShared(0);
    exp::setupMembench(a, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    a.setupStateBuffer();
    exp::setupMembench(b, 1ULL << 20, accel::MembenchAccel::kRead,
                       4, /*gap=*/64);
    b.setupStateBuffer();
    a.start();
    b.start();

    sys.run(sys.eq.now() + 500 * sim::kTickUs);

    // A hung while holding the slot and was quarantined; the reset
    // wiped the device — including the auditor-facing state A left
    // behind — and the reattach path re-stamped B's slice.
    ASSERT_GE(sys.hv.slotResets(), 1u);
    ASSERT_TRUE(sys.hv.isScheduled(b.vaccel()));
    expectEntryMatches(sys, b.vaccel());
    // The two slices are disjoint, so a stale entry could not have
    // satisfied the check above by accident.
    EXPECT_NE(a.vaccel().sliceIovaBase(), b.vaccel().sliceIovaBase());
}

} // namespace
