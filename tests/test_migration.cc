/**
 * @file
 * Virtual-accelerator migration tests (the Section 7.1 extension):
 * a running job moves to another physical slot mid-execution and
 * completes correctly; migration is refused across accelerator
 * types; descheduled tenants migrate with their cached state.
 */

#include <gtest/gtest.h>

#include "accel/linkedlist_accel.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

TEST(MigrationTest, RunningJobMigratesAndCompletesCorrectly)
{
    System sys(makeOptimusConfig("LL", 2));
    AccelHandle &h = sys.attach(0, 1ULL << 30);

    auto layout = workload::buildLinkedList(h, 60000, 33);
    h.writeAppReg(accel::LinkedlistAccel::kRegHead,
                  layout.head.value());
    h.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
    h.setupStateBuffer();
    h.start();

    // Let it walk a while, then migrate to slot 1 mid-flight.
    sys.run(sys.eq.now() + 5 * sim::kTickMs);
    std::uint64_t progress_before =
        sys.hv.peekProgress(h.vaccel());
    ASSERT_GT(progress_before, 0u);
    ASSERT_LT(progress_before, 60000u);

    bool migrated = false;
    sys.hv.migrate(h.vaccel(), 1, [&](bool ok) { migrated = ok; });
    h.pumpUntil([&]() { return migrated; });
    EXPECT_EQ(h.vaccel().slot(), 1u);
    EXPECT_TRUE(sys.hv.isScheduled(h.vaccel()));
    EXPECT_EQ(sys.hv.migrations(), 1u);

    // The walk resumes on the new physical accelerator and the
    // final checksum is exactly what an unmigrated walk produces.
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_EQ(h.result(), layout.checksum);
    EXPECT_EQ(h.progress(), layout.nodes);
    // Work really happened on the destination accelerator.
    EXPECT_GT(sys.platform.accel(1).dma().readsIssued(), 0u);
}

TEST(MigrationTest, RefusedAcrossAcceleratorTypes)
{
    PlatformConfig cfg;
    cfg.apps = {"LL", "AES"};
    System sys(cfg);
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    h.setupStateBuffer();

    bool result = true;
    sys.hv.migrate(h.vaccel(), 1, [&](bool ok) { result = ok; });
    EXPECT_FALSE(result);
    EXPECT_EQ(h.vaccel().slot(), 0u);
    EXPECT_EQ(sys.hv.migrations(), 0u);
}

TEST(MigrationTest, DescheduledTenantMigratesWithPendingStart)
{
    System sys(makeOptimusConfig("LL", 2, [] {
                   auto p = sim::PlatformParams::harpDefaults();
                   p.timeSlice = 5 * sim::kTickMs;
                   return p;
               }()));
    AccelHandle &holder = sys.attach(0, 1ULL << 30);
    AccelHandle &second = sys.attach(0, 1ULL << 30); // descheduled
    holder.setupStateBuffer();

    auto layout = workload::buildLinkedList(second, 500, 44);
    second.writeAppReg(accel::LinkedlistAccel::kRegHead,
                       layout.head.value());
    second.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
    second.setupStateBuffer();
    second.start(); // postponed: tenant 1 holds slot 0
    ASSERT_FALSE(sys.hv.isScheduled(second.vaccel()));

    // Move the waiting tenant to the idle slot 1: it should get the
    // hardware immediately and run to completion there.
    bool migrated = false;
    sys.hv.migrate(second.vaccel(), 1,
                   [&](bool ok) { migrated = ok; });
    second.pumpUntil([&]() { return migrated; });
    EXPECT_EQ(second.vaccel().slot(), 1u);
    EXPECT_EQ(second.wait(), accel::Status::kDone);
    EXPECT_EQ(second.result(), layout.checksum);
}

TEST(MigrationTest, LoadBalancingAcrossSlots)
{
    // Three tenants pile onto slot 0; migrating two of them away
    // leaves every slot with one tenant and all jobs complete.
    System sys(makeOptimusConfig("LL", 3, [] {
                   auto p = sim::PlatformParams::harpDefaults();
                   p.timeSlice = 2 * sim::kTickMs;
                   return p;
               }()));
    std::vector<AccelHandle *> handles;
    std::vector<workload::LinkedListLayout> layouts;
    for (int i = 0; i < 3; ++i) {
        handles.push_back(&sys.attach(0, 1ULL << 30));
        layouts.push_back(
            workload::buildLinkedList(*handles.back(), 40000,
                                      70 + i));
        handles.back()->writeAppReg(
            accel::LinkedlistAccel::kRegHead,
            layouts.back().head.value());
        handles.back()->writeAppReg(
            accel::LinkedlistAccel::kRegCount, 0);
        handles.back()->setupStateBuffer();
        handles.back()->start();
    }
    sys.run(sys.eq.now() + 3 * sim::kTickMs);

    int moved = 0;
    sys.hv.migrate(handles[1]->vaccel(), 1, [&](bool ok) {
        moved += ok ? 1 : 0;
    });
    handles[1]->pumpUntil([&]() { return moved == 1; });
    sys.hv.migrate(handles[2]->vaccel(), 2, [&](bool ok) {
        moved += ok ? 1 : 0;
    });
    handles[2]->pumpUntil([&]() { return moved == 2; });

    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(handles[static_cast<std::size_t>(i)]->wait(),
                  accel::Status::kDone)
            << i;
        EXPECT_EQ(handles[static_cast<std::size_t>(i)]->result(),
                  layouts[static_cast<std::size_t>(i)].checksum)
            << i;
    }
    EXPECT_EQ(sys.hv.migrations(), 2u);
}

} // namespace
