/**
 * @file
 * Doorbell-free command/completion ring tests (DESIGN.md §14):
 * guest-side queue mechanics against real process memory; the full
 * submit -> poll -> complete path matching the MMIO baseline's
 * results; byte-determinism of a ring-path service plane across
 * worker pool widths and domain plans; preemption with a non-empty
 * ring; slot-to-slot migration (device checkpoint/restore) with
 * outstanding entries; fleet live-migration of a ring tenant; and
 * quarantine error delivery through the completion ring.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/builders.hh"
#include "exp/result.hh"
#include "fleet/fleet.hh"
#include "guest/process.hh"
#include "guest/vm.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"
#include "mem/frame_allocator.hh"
#include "mem/host_memory.hh"
#include "ring/ring.hh"
#include "sim/domain.hh"
#include "svc/service_plane.hh"

using namespace optimus;

namespace {

// ---------------------------------------------------------------
// Guest-side queue views, no simulation: single-writer mechanics.
// ---------------------------------------------------------------

TEST(RingTest, QueueMechanicsAgainstProcessMemory)
{
    mem::HostMemory memory(1ULL << 30);
    mem::FrameAllocator frames(mem::Hpa(mem::kPage2M),
                               mem::Hpa(1ULL << 30));
    guest::Vm vm("vm0", memory, frames, 64ULL << 20);
    guest::Process &proc = vm.createProcess("proc");

    const std::uint32_t entries = 4;
    const std::uint64_t bytes = ring::ringBytes(entries);
    EXPECT_EQ(bytes, (4 + 2 * 4) * 64u);
    mem::Gva base = proc.mmapNoReserve(bytes);
    std::vector<std::uint8_t> zero(bytes, 0);
    proc.write(base, zero.data(), bytes);

    ring::SubmitQueue sq(proc, base, entries);
    ring::CompleteQueue cq(proc, base, entries);
    ASSERT_TRUE(sq.valid());
    ASSERT_TRUE(cq.valid());

    // Fill the submit ring: the 4th entry makes it full until the
    // (emulated) device acknowledges through submit.cons.
    for (std::uint64_t s = 0; s < entries; ++s) {
        ASSERT_FALSE(sq.full());
        EXPECT_EQ(sq.push(ring::op::kStart, s, s ^ 3), s);
    }
    sq.publish();
    EXPECT_TRUE(sq.full());
    EXPECT_EQ(
        proc.readValue<std::uint64_t>(
            base + ring::headerOff(ring::kSubmitProdLine)),
        4u);
    proc.writeValue<std::uint64_t>(
        base + ring::headerOff(ring::kSubmitConsLine), 2);
    EXPECT_FALSE(sq.full());

    // Device posts two completions; poll consumes them in order and
    // acknowledges through complete.cons.
    EXPECT_EQ(cq.pending(), 0u);
    for (std::uint64_t s = 0; s < 2; ++s) {
        ring::CompleteEntry ce;
        ce.seq = s;
        ce.status = 5;
        ce.result = 100 + s;
        proc.write(base + ring::completeSlotOff(entries, s), &ce,
                   sizeof(ce));
    }
    proc.writeValue<std::uint64_t>(
        base + ring::headerOff(ring::kCompleteProdLine), 2);
    EXPECT_EQ(cq.pending(), 2u);
    ring::CompleteEntry e;
    ASSERT_TRUE(cq.poll(e));
    EXPECT_EQ(e.seq, 0u);
    EXPECT_EQ(e.result, 100u);
    ASSERT_TRUE(cq.poll(e));
    EXPECT_EQ(e.seq, 1u);
    EXPECT_FALSE(cq.poll(e));
    EXPECT_EQ(
        proc.readValue<std::uint64_t>(
            base + ring::headerOff(ring::kCompleteConsLine)),
        2u);

    // resync() reloads the cursors from memory (the migration path).
    ring::SubmitQueue sq2(proc, base, entries);
    ring::CompleteQueue cq2(proc, base, entries);
    sq2.resync();
    cq2.resync();
    EXPECT_EQ(sq2.produced(), 4u);
    EXPECT_EQ(cq2.consumed(), 2u);
}

TEST(RingTest, CmdPathNames)
{
    EXPECT_STREQ(ring::cmdPathName(ring::CmdPath::kMmio), "mmio");
    EXPECT_STREQ(ring::cmdPathName(ring::CmdPath::kRing), "ring");
    ring::CmdPath p{};
    EXPECT_TRUE(ring::parseCmdPath("ring", p));
    EXPECT_EQ(p, ring::CmdPath::kRing);
    EXPECT_TRUE(ring::parseCmdPath("mmio", p));
    EXPECT_EQ(p, ring::CmdPath::kMmio);
    EXPECT_FALSE(ring::parseCmdPath("doorbell", p));
    EXPECT_EQ(ring::defaultEntries(1), 8u);
    EXPECT_EQ(ring::defaultEntries(8), 16u);
    EXPECT_EQ(ring::defaultEntries(12), 32u);
}

// ---------------------------------------------------------------
// Full stack: ring submissions complete like MMIO STARTs.
// ---------------------------------------------------------------

struct RingJob
{
    hv::System sys;
    hv::AccelHandle *handle;
    std::unique_ptr<hv::workload::Workload> wl;

    explicit RingJob(std::uint32_t slots = 1)
        : sys(hv::makeOptimusConfig("SHA", slots))
    {
        handle = &sys.attach(0, 1ULL << 30);
        wl = hv::workload::Workload::create("SHA", *handle,
                                            64 * 1024, 9);
        wl->program();
        handle->setupStateBuffer();
    }
};

TEST(RingTest, SubmitCompletesLikeMmio)
{
    // Reference: the same job driven by a trapped START.
    RingJob ref;
    ref.handle->start();
    ASSERT_EQ(ref.handle->wait(), accel::Status::kDone);
    ASSERT_TRUE(ref.wl->verify());
    const std::uint64_t ref_result = ref.handle->result();
    const std::uint64_t ref_progress = ref.handle->progress();

    RingJob rj;
    rj.handle->setupRing(8);
    ASSERT_TRUE(rj.handle->ringEnabled());
    const std::uint64_t traps_before = rj.sys.hv.traps();
    std::uint64_t seq = rj.handle->ringSubmit();
    ring::CompleteEntry e = rj.handle->ringWait(seq);
    EXPECT_EQ(static_cast<accel::Status>(e.status),
              accel::Status::kDone);
    EXPECT_EQ(e.result, ref_result);
    EXPECT_EQ(e.progress, ref_progress);
    EXPECT_EQ(e.err, 0u);
    EXPECT_TRUE(rj.wl->verify());
    // The whole submit/complete round trip trapped nothing.
    EXPECT_EQ(rj.sys.hv.traps(), traps_before);
    EXPECT_EQ(rj.sys.hv.ringSubmits(), 1u);
    // The guest sees the completion the instant the device posts it;
    // the hypervisor's mirror catches up at the drain doorbell.
    rj.handle->pumpUntil(
        [&]() { return rj.sys.hv.ringCompletes() >= 1; });
    EXPECT_EQ(rj.sys.hv.ringCompletes(), 1u);
}

TEST(RingTest, BatchedSubmitsCompleteInOrder)
{
    RingJob rj;
    rj.handle->setupRing(8);
    const int kJobs = 12; // > entries: wraps and back-pressures
    std::vector<std::uint64_t> seqs;
    for (int i = 0; i < kJobs; ++i)
        seqs.push_back(rj.handle->ringSubmit());
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(seqs[static_cast<std::size_t>(i)],
                  static_cast<std::uint64_t>(i));
    std::uint64_t prev_result = 0;
    for (int i = 0; i < kJobs; ++i) {
        ring::CompleteEntry e =
            rj.handle->ringWait(static_cast<std::uint64_t>(i));
        EXPECT_EQ(static_cast<accel::Status>(e.status),
                  accel::Status::kDone);
        if (i > 0) {
            EXPECT_EQ(e.result, prev_result); // same job re-run
        }
        prev_result = e.result;
    }
    EXPECT_TRUE(rj.wl->verify());
    rj.handle->pumpUntil([&]() {
        return rj.sys.hv.ringCompletes() >=
               static_cast<std::uint64_t>(kJobs);
    });
    EXPECT_EQ(rj.sys.hv.ringCompletes(),
              static_cast<std::uint64_t>(kJobs));
}

// ---------------------------------------------------------------
// Determinism: a ring-path plane is byte-identical across pool
// widths and domain plans (the bench's --jobs axis is covered by
// exp::Runner's slot discipline + the CI diff loops).
// ---------------------------------------------------------------

std::uint64_t
ringPlaneFingerprint(unsigned threads, bool split)
{
    bool prev_split = sim::setDefaultDomainSplit(split);
    unsigned prev_threads = sim::setDefaultSimThreads(threads);
    std::uint64_t fp = 0;
    {
        hv::System sys(hv::makeOptimusConfig("SHA", 1));
        sys.hv.setPolicy(0, hv::SchedPolicy::kRoundRobin,
                         100 * sim::kTickUs);
        svc::ServicePlane plane(sys);
        for (int i = 0; i < 2; ++i) {
            svc::TenantConfig cfg;
            cfg.name = "t" + std::to_string(i);
            cfg.app = "SHA";
            cfg.bytes = 512;
            cfg.seed = 51 + static_cast<std::uint64_t>(i);
            cfg.slot = 0;
            cfg.arrivals.kind = svc::ArrivalKind::kPoisson;
            cfg.arrivals.ratePerSec = 60000.0;
            cfg.cmdPath = ring::CmdPath::kRing;
            cfg.batchMax = 4;
            plane.addTenant(cfg);
        }
        plane.run(sim::kTickMs);
        exp::Fingerprint f;
        f.add(plane.fingerprint());
        f.add(sys.hv.ringSubmits()).add(sys.hv.ringCompletes());
        f.add(sys.hv.traps()).add(sys.eq.now());
        fp = f.value();
    }
    sim::setDefaultSimThreads(prev_threads);
    sim::setDefaultDomainSplit(prev_split);
    return fp;
}

TEST(RingTest, DeterministicAcrossSimThreadsAndDomainPlan)
{
    const std::uint64_t base = ringPlaneFingerprint(1, false);
    EXPECT_EQ(ringPlaneFingerprint(4, false), base);
    EXPECT_EQ(ringPlaneFingerprint(1, true), base);
    EXPECT_EQ(ringPlaneFingerprint(4, true), base);
}

// ---------------------------------------------------------------
// Preemption with a non-empty ring: two ring tenants time-share one
// slot; slice expiry preempts mid-batch and every job still
// completes (and verifies) on resume.
// ---------------------------------------------------------------

TEST(RingTest, PreemptMidRingKeepsJobsCorrect)
{
    hv::System sys(hv::makeOptimusConfig("SHA", 1));
    sys.hv.setPolicy(0, hv::SchedPolicy::kRoundRobin,
                     100 * sim::kTickUs);
    svc::ServicePlane plane(sys);
    for (int i = 0; i < 2; ++i) {
        svc::TenantConfig cfg;
        cfg.name = "t" + std::to_string(i);
        cfg.app = "SHA";
        cfg.bytes = 512;
        cfg.seed = 61 + static_cast<std::uint64_t>(i);
        cfg.slot = 0;
        cfg.arrivals.kind = svc::ArrivalKind::kFixed;
        cfg.arrivals.ratePerSec = 80000.0;
        cfg.cmdPath = ring::CmdPath::kRing;
        cfg.batchMax = 8;
        plane.addTenant(cfg);
    }
    plane.run(2 * sim::kTickMs);

    // Both tenants sustained ~69% combined load each: the slot
    // switched hands repeatedly with entries still queued.
    EXPECT_GT(sys.hv.contextSwitches(), 10u);
    for (std::size_t i = 0; i < plane.numTenants(); ++i) {
        const svc::Tenant &t = plane.tenant(i);
        EXPECT_GT(t.completed(), 0u) << i;
        EXPECT_EQ(t.errors(), 0u) << i;
        EXPECT_EQ(t.verifyFailures(), 0u) << i;
        EXPECT_EQ(t.admitted(), t.completed() + t.dropped()) << i;
    }
    EXPECT_EQ(sys.hv.ringSubmits(), sys.hv.ringKicks());
}

// ---------------------------------------------------------------
// Migration with outstanding entries: the device checkpoint carries
// the poller cursors, the new slot re-arms, and the tail of the
// ring completes on the destination hardware.
// ---------------------------------------------------------------

TEST(RingTest, MigrateWithNonEmptyRing)
{
    RingJob rj(2);
    rj.handle->setupRing(16);
    const int kJobs = 10;
    for (int i = 0; i < kJobs; ++i)
        rj.handle->ringSubmit();
    // Jobs are ~500us each at 64 KiB; only the head of the ring can
    // have completed by now.
    ASSERT_LT(rj.sys.hv.ringCompletes(),
              static_cast<std::uint64_t>(kJobs));

    bool migrated = false;
    rj.sys.hv.migrate(rj.handle->vaccel(), 1,
                      [&](bool ok) { migrated = ok; });
    rj.handle->pumpUntil([&]() { return migrated; });
    EXPECT_EQ(rj.handle->vaccel().slot(), 1u);

    std::uint64_t result = 0;
    for (int i = 0; i < kJobs; ++i) {
        ring::CompleteEntry e =
            rj.handle->ringWait(static_cast<std::uint64_t>(i));
        EXPECT_EQ(static_cast<accel::Status>(e.status),
                  accel::Status::kDone)
            << "seq " << i;
        if (i == 0)
            result = e.result;
        else
            EXPECT_EQ(e.result, result) << "seq " << i;
    }
    EXPECT_TRUE(rj.wl->verify());
    // The destination accelerator did real work.
    EXPECT_GT(rj.sys.platform.accel(1).dma().readsIssued(), 0u);
}

// ---------------------------------------------------------------
// Fleet live-migration of a ring tenant: in-flight requests travel
// in the parcel, ring contents ride the window image, and nothing
// is lost across repeated forced moves.
// ---------------------------------------------------------------

TEST(RingTest, FleetMigrationConservesRingTenantWork)
{
    fleet::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.policy = fleet::Policy::kLeastLoaded;
    cfg.node = hv::makeOptimusConfig("SHA", 1);
    cfg.rebalanceInterval = 0; // forced moves only
    fleet::Cluster cl(cfg);

    fleet::FleetTenantSpec spec;
    spec.svc.name = "t0";
    spec.svc.app = "SHA";
    spec.svc.bytes = 512;
    spec.svc.seed = 71;
    spec.svc.slot = 0;
    spec.svc.arrivals.kind = svc::ArrivalKind::kPoisson;
    spec.svc.arrivals.ratePerSec = 60000.0;
    spec.svc.sloNs = 300000;
    spec.svc.cmdPath = ring::CmdPath::kRing;
    spec.svc.batchMax = 8;
    std::size_t t = cl.addTenant(spec);

    const sim::Tick period = 400 * sim::kTickUs;
    sim::Tick next = cl.now() + period;
    cl.setBarrierProbe([&cl, &next, t, period]() {
        if (cl.now() < next || cl.now() >= cl.horizon())
            return;
        if (cl.migrateTenant(t, 1 - cl.tenantNode(t)))
            next += period;
    });
    cl.run(2 * sim::kTickMs);

    EXPECT_GE(cl.migrationsCompleted(), 2u);
    EXPECT_EQ(cl.migrationsCompleted(), cl.migrationsStarted());
    EXPECT_GT(cl.fleetCompleted(), 0u);
    EXPECT_EQ(cl.fleetArrivals(),
              cl.fleetCompleted() + cl.fleetDropped());
}

TEST(RingTest, FleetRingDeterministicAcrossSimThreads)
{
    auto runOnce = [](unsigned threads) {
        fleet::ClusterConfig cfg;
        cfg.nodes = 2;
        cfg.node = hv::makeOptimusConfig("SHA", 1);
        fleet::Cluster cl(cfg, threads);
        fleet::FleetTenantSpec spec;
        spec.svc.name = "t0";
        spec.svc.app = "SHA";
        spec.svc.bytes = 512;
        spec.svc.seed = 81;
        spec.svc.slot = 0;
        spec.svc.arrivals.kind = svc::ArrivalKind::kPoisson;
        spec.svc.arrivals.ratePerSec = 120000.0;
        spec.svc.cmdPath = ring::CmdPath::kRing;
        spec.svc.batchMax = 4;
        cl.addTenant(spec);
        cl.addTenant([&spec]() {
            fleet::FleetTenantSpec s = spec;
            s.svc.name = "t1";
            s.svc.seed = 82;
            return s;
        }());
        cl.run(sim::kTickMs);
        return cl.fingerprint();
    };
    EXPECT_EQ(runOnce(1), runOnce(4));
}

// ---------------------------------------------------------------
// Quarantine: a hung ring tenant's outstanding entries complete as
// errors through the ring, carrying the watchdog's ERR_STATUS bits;
// the next kick clears the quarantine and the job re-runs clean.
// ---------------------------------------------------------------

TEST(RingTest, QuarantineDeliversErrorStatusThroughRing)
{
    hv::System sys(hv::makeOptimusConfig("SHA", 1));
    auto inj = exp::installFaults(
        sys, "hang@0:at=200us;watchdog:deadline=100us");
    hv::AccelHandle &h = sys.attach(0, 1ULL << 30);
    // A multi-millisecond job so the 200us hang lands mid-flight.
    auto wl = hv::workload::Workload::create("SHA", h, 1ULL << 20,
                                             13);
    wl->program();
    h.setupStateBuffer();
    h.setupRing(8);

    std::uint64_t seq = h.ringSubmit();
    ring::CompleteEntry e = h.ringWait(seq);
    EXPECT_EQ(static_cast<accel::Status>(e.status),
              accel::Status::kError);
    EXPECT_NE(e.err & (accel::errst::kWatchdog |
                       accel::errst::kForcedReset),
              0u);

    // Re-kick: quarantine clears, the fault is spent, and the same
    // ring serves a clean completion.
    std::uint64_t seq2 = h.ringSubmit();
    ring::CompleteEntry e2 = h.ringWait(seq2);
    EXPECT_EQ(static_cast<accel::Status>(e2.status),
              accel::Status::kDone);
    EXPECT_EQ(e2.err, 0u);
    EXPECT_TRUE(wl->verify());
}

TEST(RingTest, ServicePlaneRetriesQuarantinedRingTenant)
{
    hv::System sys(hv::makeOptimusConfig("SHA", 2));
    svc::ServicePlane plane(sys);
    svc::TenantConfig a;
    a.name = "a";
    a.app = "SHA";
    a.bytes = 512;
    a.seed = 5;
    a.slot = 0;
    a.arrivals.kind = svc::ArrivalKind::kFixed;
    a.arrivals.ratePerSec = 20000.0;
    a.sloNs = 50000;
    a.cmdPath = ring::CmdPath::kRing;
    a.batchMax = 4;
    svc::TenantConfig b = a;
    b.name = "b";
    b.seed = 6;
    b.slot = 1;
    svc::Tenant &ta = plane.addTenant(a);
    svc::Tenant &tb = plane.addTenant(b);
    auto inj = exp::installFaults(
        sys, "hang@0:at=200us;watchdog:deadline=100us");
    plane.run(2 * sim::kTickMs);

    // Tenant a observed ring-delivered errors and retried through
    // them; co-tenant b on its own slot stayed clean.
    EXPECT_GT(ta.errors(), 0u);
    EXPECT_GT(ta.completed(), 0u);
    EXPECT_EQ(ta.verifyFailures(), 0u);
    EXPECT_EQ(tb.errors(), 0u);
    EXPECT_EQ(tb.verifyFailures(), 0u);
    EXPECT_EQ(tb.admitted(), tb.completed() + tb.dropped());
}

} // namespace
