/**
 * @file
 * Guest-stack tests: VM construction and EPT, guest-physical
 * allocation, process address spaces (reservation, demand backing,
 * CPU read/write through two levels of translation), and the
 * consistency of the CPU and accelerator views of shared memory.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "guest/process.hh"
#include "guest/vm.hh"
#include "accel/streaming_accelerator.hh"
#include "hv/system.hh"
#include "mem/frame_allocator.hh"
#include "mem/host_memory.hh"

using namespace optimus;
using namespace optimus::guest;

namespace {

class GuestFixture : public ::testing::Test
{
  protected:
    mem::HostMemory memory{8ULL << 30};
    mem::FrameAllocator frames{mem::Hpa(mem::kPage2M),
                               mem::Hpa(8ULL << 30)};
};

TEST_F(GuestFixture, VmEptMapsWholeRamContiguously)
{
    Vm vm("vm0", memory, frames, 256ULL << 20);
    mem::Hpa first = vm.toHpa(mem::Gpa(0));
    mem::Hpa last = vm.toHpa(mem::Gpa((256ULL << 20) - 1));
    EXPECT_EQ(last - first, (256ULL << 20) - 1);
    EXPECT_EQ(vm.ept().pageBytes(), mem::kPage2M);
    EXPECT_EQ(vm.ept().size(), 128u);
}

TEST_F(GuestFixture, TwoVmsGetDisjointPhysicalMemory)
{
    Vm a("a", memory, frames, 64ULL << 20);
    Vm b("b", memory, frames, 64ULL << 20);
    mem::Hpa a_end = a.toHpa(mem::Gpa((64ULL << 20) - 1));
    mem::Hpa b_start = b.toHpa(mem::Gpa(0));
    EXPECT_LT(a_end.value(), b_start.value());
}

TEST_F(GuestFixture, GpaAllocatorRespectsAlignmentAndCapacity)
{
    Vm vm("vm", memory, frames, 16ULL << 20);
    mem::Gpa g1 = vm.allocGpa(100);
    mem::Gpa g2 = vm.allocGpa(mem::kPage2M, mem::kPage2M);
    EXPECT_EQ(g2.value() % mem::kPage2M, 0u);
    EXPECT_GT(g2.value(), g1.value());
    EXPECT_DEATH(vm.allocGpa(1ULL << 30), "out of RAM");
}

TEST_F(GuestFixture, ProcessDemandBackingAndTranslation)
{
    Vm vm("vm", memory, frames, 64ULL << 20);
    Process &p = vm.createProcess("proc");

    mem::Gva range = p.mmapNoReserve(8ULL << 20);
    EXPECT_FALSE(p.isBacked(range));

    mem::Gpa gpa = p.backPage(range);
    EXPECT_TRUE(p.isBacked(range));
    EXPECT_EQ(p.toGpa(range).value(), gpa.value());
    // Backing is idempotent.
    EXPECT_EQ(p.backPage(range).value(), gpa.value());
    // The adjacent page remains unbacked.
    EXPECT_FALSE(p.isBacked(range + mem::kPage2M));
}

TEST_F(GuestFixture, ReservationsDoNotOverlap)
{
    Vm vm("vm", memory, frames, 64ULL << 20);
    Process &p = vm.createProcess("proc");
    mem::Gva a = p.mmapNoReserve(100);
    mem::Gva b = p.mmapNoReserve(64ULL << 30);
    mem::Gva c = p.mmapNoReserve(100);
    EXPECT_GE(b - a, mem::kPage2M);
    EXPECT_GE(c - b, 64ULL << 30);
}

TEST_F(GuestFixture, WriteReadRoundTripAcrossPages)
{
    Vm vm("vm", memory, frames, 64ULL << 20);
    Process &p = vm.createProcess("proc");
    mem::Gva base = p.mmapNoReserve(8ULL << 20);

    // Straddle a 2 MB page boundary: demand-backs both pages.
    std::vector<std::uint8_t> data(1 << 20);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 31);
    mem::Gva at = base + mem::kPage2M - (1 << 19);
    p.write(at, data.data(), data.size());

    std::vector<std::uint8_t> back(data.size());
    p.read(at, back.data(), back.size());
    EXPECT_EQ(data, back);
    EXPECT_TRUE(p.isBacked(at));
    EXPECT_TRUE(p.isBacked(at + data.size() - 1));
}

TEST_F(GuestFixture, ReadingUnbackedMemoryDies)
{
    Vm vm("vm", memory, frames, 64ULL << 20);
    Process &p = vm.createProcess("proc");
    mem::Gva base = p.mmapNoReserve(1 << 20);
    std::uint8_t byte;
    EXPECT_DEATH(p.read(base, &byte, 1), "unbacked");
}

TEST(SharedMemoryViewTest, CpuSeesAcceleratorWritesAndViceVersa)
{
    // The defining property of the shared-memory model (Section 2):
    // CPU writes are visible to accelerator DMAs at the same guest
    // virtual addresses, and accelerator writes are visible to the
    // CPU, through GVA->GPA->HPA and GVA->IOVA->HPA respectively.
    hv::System sys(hv::makeOptimusConfig("AES", 1));
    hv::AccelHandle &h = sys.attach(0, 1ULL << 30);

    mem::Gva src = h.dmaAlloc(4096);
    mem::Gva dst = h.dmaAlloc(4096);
    std::vector<std::uint8_t> plain(4096, 0x5a);
    h.memWrite(src, plain.data(), plain.size()); // CPU writes

    h.writeAppReg(accel::stream_reg::kSrc, src.value());
    h.writeAppReg(accel::stream_reg::kDst, dst.value());
    h.writeAppReg(accel::stream_reg::kLen, 4096);
    h.start();
    ASSERT_EQ(h.wait(), accel::Status::kDone);

    // The accelerator read the CPU's plaintext and the CPU now reads
    // the accelerator's ciphertext — nonzero and not the plaintext.
    std::vector<std::uint8_t> cipher(4096);
    h.memRead(dst, cipher.data(), cipher.size()); // CPU reads
    EXPECT_NE(cipher, plain);
    bool all_zero = true;
    for (auto b : cipher)
        all_zero = all_zero && b == 0;
    EXPECT_FALSE(all_zero);
}

} // namespace
