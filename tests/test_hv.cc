/**
 * @file
 * Hypervisor tests: page table slicing layout (64 GB slices + the
 * conflict-mitigation gap), the shadow-paging hypercall (window
 * validation, pinning, IOPT installation at both page sizes), MMIO
 * trap-and-emulate semantics (privileged bits, deferred starts,
 * register caching), and cross-tenant DMA isolation end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "accel/linkedlist_accel.hh"
#include "accel/membench_accel.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

TEST(SlicingTest, SlicesAreDisjointAndGapped)
{
    System sys(makeOptimusConfig("LL", 8));
    std::vector<VirtualAccel *> vas;
    for (std::uint32_t i = 0; i < 8; ++i)
        vas.push_back(&sys.attach(i, 1ULL << 30).vaccel());

    const auto &p = sys.platform.params();
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(vas[i]->windowBytes(), p.sliceBytes);

    // Window GVAs may (and here do) alias across processes — the
    // exact conflict page table slicing exists to resolve. The
    // hardware view disambiguates: each auditor's committed offset
    // entry maps the same GVA window to a disjoint IOVA slice.
    std::uint64_t stride = p.sliceBytes + p.sliceGapBytes;
    sys.handle(0).pumpUntil([&]() {
        return sys.platform.monitor()
            ->auditor(7)
            .offsetEntry()
            .valid;
    });
    std::vector<std::uint64_t> slice_bases;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const auto &e = sys.platform.monitor()->auditor(i)
                            .offsetEntry();
        ASSERT_TRUE(e.valid) << i;
        std::uint64_t slice_base = e.gvaBase + e.offset; // mod 2^64
        slice_bases.push_back(slice_base);
        EXPECT_EQ(slice_base % stride, 0u) << i;
    }
    std::sort(slice_bases.begin(), slice_bases.end());
    for (std::uint32_t i = 1; i < 8; ++i)
        EXPECT_GE(slice_bases[i] - slice_bases[i - 1], stride);
}

TEST(SlicingTest, ConflictMitigationTogglesGap)
{
    sim::PlatformParams with = sim::PlatformParams::harpDefaults();
    sim::PlatformParams without = with;
    without.iotlbConflictMitigation = false;

    // Observe through the IOTLB set index of the first mapped page
    // of two tenants.
    for (int mode = 0; mode < 2; ++mode) {
        System sys(makeOptimusConfig("LL", 2,
                                     mode == 0 ? with : without));
        AccelHandle &a = sys.attach(0, 1ULL << 30);
        AccelHandle &b = sys.attach(1, 1ULL << 30);
        a.dmaAlloc(4096);
        b.dmaAlloc(4096);
        auto &iopt = sys.platform.iommu().pageTable();
        ASSERT_EQ(iopt.size(), 2u);
        auto &tlb = sys.platform.iommu().iotlb();

        const auto &p = sys.platform.params();
        std::uint64_t stride =
            p.sliceBytes +
            (mode == 0 ? p.sliceGapBytes : 0);
        std::uint32_t set0 = tlb.setIndex(mem::Iova(1 * stride));
        std::uint32_t set1 = tlb.setIndex(mem::Iova(2 * stride));
        if (mode == 0) {
            EXPECT_NE(set0, set1) << "gap must separate sets";
        } else {
            EXPECT_EQ(set0, set1) << "no gap: sets collide";
        }
    }
}

TEST(ShadowPagingTest, RegistrationInstallsTranslationAndPins)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    EXPECT_EQ(sys.platform.iommu().pageTable().size(), 0u);

    h.dmaAlloc(4096); // grows the heap by one 2 MB page
    EXPECT_EQ(sys.platform.iommu().pageTable().size(), 1u);
    EXPECT_EQ(sys.hv.hypercalls(), 1u);
    EXPECT_GE(sys.platform.frames().framesPinned(), 1u);

    // A second allocation within the same page does not re-register.
    h.dmaAlloc(4096);
    EXPECT_EQ(sys.hv.hypercalls(), 1u);
    // Crossing into a new page does.
    h.dmaAlloc(4ULL << 20);
    EXPECT_GE(sys.hv.hypercalls(), 2u);
}

TEST(ShadowPagingTest, RejectsPagesOutsideTheWindow)
{
    System sys(makeOptimusConfig("LL", 2));
    AccelHandle &a = sys.attach(0, 1ULL << 30);
    AccelHandle &b = sys.attach(1, 1ULL << 30);
    (void)b;

    // Try to register a page of tenant B's window through tenant
    // A's virtual accelerator: must be rejected.
    mem::Gva foreign = b.vaccel().windowBase();
    b.process().backPage(foreign);
    bool result = true;
    sys.hv.registerDmaPage(a.vaccel(), foreign,
                           [&](bool ok) { result = ok; });
    a.pumpUntil([&]() { return !result; });
    EXPECT_FALSE(result);
}

TEST(ShadowPagingTest, RejectsUnalignedAndUnbackedPages)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);

    int done = 0;
    bool ok_unaligned = true;
    sys.hv.registerDmaPage(h.vaccel(),
                           h.vaccel().windowBase() + 4096,
                           [&](bool ok) {
                               ok_unaligned = ok;
                               ++done;
                           });
    bool ok_unbacked = true;
    sys.hv.registerDmaPage(h.vaccel(),
                           h.vaccel().windowBase() +
                               (32ULL << 20), // reserved, untouched
                           [&](bool ok) {
                               ok_unbacked = ok;
                               ++done;
                           });
    h.pumpUntil([&]() { return done == 2; });
    EXPECT_FALSE(ok_unaligned);
    EXPECT_FALSE(ok_unbacked);
}

TEST(ShadowPagingTest, FourKPageModeInstalls512Entries)
{
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.pageBytes = mem::kPage4K;
    System sys(makeOptimusConfig("LL", 1, p));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    h.dmaAlloc(4096);
    EXPECT_EQ(sys.platform.iommu().pageTable().size(), 512u);
}

TEST(MmioEmulationTest, GuestCannotIssuePrivilegedCommands)
{
    System sys(makeOptimusConfig("MB", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    auto wl = workload::Workload::create("MB", h, 64 * 1024, 1);
    wl->program();
    h.start();
    // A guest PREEMPT must be masked off by the hypervisor: the
    // accelerator keeps running.
    h.mmioWrite(accel::reg::kCtrl, accel::ctrl::kPreempt);
    EXPECT_EQ(sys.platform.accel(0).status(),
              accel::Status::kRunning);
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_TRUE(wl->verify());
}

TEST(MmioEmulationTest, TrapsAreCountedUnderOptimusOnly)
{
    {
        System sys(makeOptimusConfig("LL", 1));
        AccelHandle &h = sys.attach(0, 1ULL << 30);
        h.mmioRead(accel::reg::kStatus);
        EXPECT_GT(sys.hv.traps(), 0u);
    }
    {
        System sys(makePassthroughConfig("LL"));
        AccelHandle &h = sys.attach(0, 1ULL << 30);
        h.mmioRead(accel::reg::kStatus);
        EXPECT_EQ(sys.hv.traps(), 0u);
    }
}

TEST(MmioEmulationTest, AppRegistersReadBackFromCache)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    h.writeAppReg(5, 0xabcdef);
    EXPECT_EQ(h.mmioRead(accel::reg::appReg(5)), 0xabcdefu);
    // And the hardware register received it too (scheduled vaccel).
    EXPECT_EQ(sys.platform.accel(0).mmioRead(accel::reg::appReg(5)),
              0xabcdefu);
}

TEST(MmioEmulationTest, StartWhileDescheduledIsPostponed)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &first = sys.attach(0, 1ULL << 30);
    AccelHandle &second = sys.attachShared(0);

    // Tenant 2 is not scheduled (tenant 1 holds the slot). Program
    // and start a walk; the command must be postponed, with the
    // guest-visible status already RUNNING.
    auto layout = workload::buildLinkedList(second, 64, 3);
    second.writeAppReg(accel::LinkedlistAccel::kRegHead,
                       layout.head.value());
    second.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
    second.setupStateBuffer();
    second.start();
    EXPECT_EQ(sys.hv.peekStatus(second.vaccel()),
              accel::Status::kRunning);
    EXPECT_FALSE(sys.hv.isScheduled(second.vaccel()));
    // The physical accelerator is still idle (tenant 1 never
    // started anything).
    EXPECT_EQ(sys.platform.accel(0).status(), accel::Status::kIdle);

    // Once the scheduler rotates, the postponed start executes and
    // the job completes.
    first.setupStateBuffer();
    EXPECT_EQ(second.wait(), accel::Status::kDone);
    EXPECT_EQ(second.result(), layout.checksum);
}

TEST(IsolationTest, OutOfWindowDmaIsRejectedByTheAuditor)
{
    // Layer 1 of DMA isolation: a guest-virtual address outside the
    // accelerator's window never reaches the interconnect.
    System sys(makeOptimusConfig("MB", 1));
    AccelHandle &attacker = sys.attach(0, 1ULL << 30);

    mem::Gva below = attacker.vaccel().windowBase() - (1ULL << 30);
    attacker.writeAppReg(accel::MembenchAccel::kRegBase,
                         below.value());
    attacker.writeAppReg(accel::MembenchAccel::kRegWset, 1ULL << 20);
    attacker.writeAppReg(accel::MembenchAccel::kRegMode,
                         accel::MembenchAccel::kRead);
    attacker.writeAppReg(accel::MembenchAccel::kRegTarget, 4);
    attacker.start();
    EXPECT_EQ(attacker.wait(), accel::Status::kError);
    EXPECT_GT(sys.platform.monitor()->auditor(0).rejectedDmas(), 0u);
}

TEST(IsolationTest, UnregisteredInWindowDmaFaultsInTheIommu)
{
    // Layer 2: an address inside the window whose page the guest
    // never registered translates into the tenant's own slice and
    // faults in the IO page table — other tenants' mappings (in
    // other slices) are unreachable by construction.
    System sys(makeOptimusConfig("MB", 2));
    AccelHandle &victim = sys.attach(1, 1ULL << 30);
    AccelHandle &attacker = sys.attach(0, 1ULL << 30);

    // The victim's buffer address is numerically inside the
    // attacker's window too (identical per-process layouts) but is
    // not registered in the attacker's slice.
    mem::Gva victim_buf = victim.dmaAlloc(1ULL << 20);
    std::uint64_t faults_before = sys.platform.iommu().faults();
    attacker.writeAppReg(accel::MembenchAccel::kRegBase,
                         victim_buf.value());
    attacker.writeAppReg(accel::MembenchAccel::kRegWset, 1ULL << 20);
    attacker.writeAppReg(accel::MembenchAccel::kRegMode,
                         accel::MembenchAccel::kRead);
    attacker.writeAppReg(accel::MembenchAccel::kRegTarget, 4);
    attacker.start();
    EXPECT_EQ(attacker.wait(), accel::Status::kError);
    EXPECT_GT(sys.platform.iommu().faults(), faults_before);
}

TEST(IsolationTest, TenantsNeverObserveEachOthersData)
{
    // Both tenants use identical GVAs in their own address spaces
    // (the hard case page table slicing must disambiguate): write
    // distinct patterns and verify each accelerator reads its own.
    System sys(makeOptimusConfig("LL", 2));
    AccelHandle &a = sys.attach(0, 1ULL << 30);
    AccelHandle &b = sys.attach(1, 1ULL << 30);

    auto la = workload::buildLinkedList(a, 128, 1);
    auto lb = workload::buildLinkedList(b, 128, 2);
    ASSERT_NE(la.checksum, lb.checksum);

    for (auto *h : {&a, &b}) {
        auto &layout = h == &a ? la : lb;
        h->writeAppReg(accel::LinkedlistAccel::kRegHead,
                       layout.head.value());
        h->writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
        h->start();
    }
    EXPECT_EQ(a.wait(), accel::Status::kDone);
    EXPECT_EQ(b.wait(), accel::Status::kDone);
    EXPECT_EQ(a.result(), la.checksum);
    EXPECT_EQ(b.result(), lb.checksum);
}

TEST(OccupancyTest, SoleTenantAccumulatesAllTime)
{
    System sys(makeOptimusConfig("LL", 1));
    AccelHandle &h = sys.attach(0, 1ULL << 30);
    sys.run(sys.eq.now() + sim::kTickMs);
    EXPECT_NEAR(
        static_cast<double>(sys.hv.occupancy(h.vaccel())),
        static_cast<double>(sys.eq.now()),
        static_cast<double>(sim::kTickUs));
}

} // namespace
