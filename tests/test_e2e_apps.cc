/**
 * @file
 * End-to-end integration: every benchmark accelerator runs a real
 * job through the full stack (guest library -> hypervisor traps ->
 * hardware monitor -> multiplexer tree -> auditors -> IOMMU -> DRAM)
 * and its output is verified against the software reference. Runs
 * under both OPTIMUS and pass-through fabrics.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;

namespace {

using Param = std::tuple<std::string, bool>; // app, optimus mode

class EndToEndTest : public ::testing::TestWithParam<Param>
{
};

TEST_P(EndToEndTest, JobCompletesAndOutputMatchesSoftware)
{
    const auto &[app, optimus_mode] = GetParam();
    hv::PlatformConfig cfg = optimus_mode
                                 ? hv::makeOptimusConfig(app, 1)
                                 : hv::makePassthroughConfig(app);
    hv::System sys(cfg);
    hv::AccelHandle &h = sys.attach(0, 1ULL << 30);

    auto wl = hv::workload::Workload::create(app, h, 256 * 1024, 3);
    wl->program();
    h.start();
    ASSERT_EQ(h.wait(), accel::Status::kDone) << app;
    EXPECT_TRUE(wl->verify()) << app << " output mismatch";
    EXPECT_GT(sys.eq.now(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, EndToEndTest,
    ::testing::Combine(::testing::Values("AES", "MD5", "SHA", "FIR",
                                         "GRN", "RSD", "SW", "GAU",
                                         "GRS", "SBL", "SSSP", "BTC",
                                         "MB", "LL"),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param> &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_optimus"
                                        : "_passthrough");
    });

/** The same job must produce identical results under both fabrics. */
class FabricEquivalenceTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(FabricEquivalenceTest, ResultIndependentOfFabric)
{
    const std::string app = GetParam();
    std::uint64_t results[2];
    for (int mode = 0; mode < 2; ++mode) {
        hv::PlatformConfig cfg =
            mode == 0 ? hv::makeOptimusConfig(app, 1)
                      : hv::makePassthroughConfig(app);
        hv::System sys(cfg);
        hv::AccelHandle &h = sys.attach(0, 1ULL << 30);
        auto wl =
            hv::workload::Workload::create(app, h, 64 * 1024, 11);
        wl->program();
        h.start();
        EXPECT_EQ(h.wait(), accel::Status::kDone);
        results[mode] = h.result();
    }
    EXPECT_EQ(results[0], results[1]) << app;
}

INSTANTIATE_TEST_SUITE_P(ResultApps, FabricEquivalenceTest,
                         ::testing::Values("MD5", "SHA", "SW", "BTC",
                                           "LL", "RSD"));

/** Eight different accelerators spatially multiplexed at once. */
TEST(SpatialMultiplexTest, EightHeterogeneousAppsRunConcurrently)
{
    hv::PlatformConfig cfg;
    cfg.apps = {"AES", "MD5", "SHA", "FIR",
                "GRN", "GRS", "BTC", "LL"};
    hv::System sys(cfg);

    std::vector<hv::AccelHandle *> handles;
    std::vector<std::unique_ptr<hv::workload::Workload>> work;
    for (std::uint32_t i = 0; i < cfg.apps.size(); ++i) {
        handles.push_back(&sys.attach(i, 1ULL << 30));
        work.push_back(hv::workload::Workload::create(
            cfg.apps[i], *handles[i], 64 * 1024, 100 + i));
        work[i]->program();
    }
    for (auto *h : handles)
        h->start();
    for (std::uint32_t i = 0; i < handles.size(); ++i) {
        EXPECT_EQ(handles[i]->wait(), accel::Status::kDone)
            << cfg.apps[i];
        EXPECT_TRUE(work[i]->verify()) << cfg.apps[i];
    }
}

/** DMA isolation: concurrent tenants never corrupt each other. */
TEST(SpatialMultiplexTest, EightTenantsOutputsAllVerify)
{
    hv::PlatformConfig cfg = hv::makeOptimusConfig("AES", 8);
    hv::System sys(cfg);

    std::vector<hv::AccelHandle *> handles;
    std::vector<std::unique_ptr<hv::workload::Workload>> work;
    for (std::uint32_t i = 0; i < 8; ++i) {
        handles.push_back(&sys.attach(i, 1ULL << 30));
        work.push_back(hv::workload::Workload::create(
            "AES", *handles[i], 32 * 1024, 200 + i));
        work[i]->program();
    }
    for (auto *h : handles)
        h->start();
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(handles[i]->wait(), accel::Status::kDone);
        EXPECT_TRUE(work[i]->verify()) << "tenant " << i;
    }
}

} // namespace
