/**
 * @file
 * Accelerator-framework tests: the DMA port's windowing, pacing, and
 * reset semantics; the common register file protocol; doorbells; and
 * in-order delivery through the streaming engine's reorder buffer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/accelerator.hh"
#include "accel/dma_port.hh"
#include "accel/linkedlist_accel.hh"
#include "accel/membench_accel.hh"
#include "accel/regs.hh"
#include "fpga/accel_port.hh"
#include "sim/event_queue.hh"

using namespace optimus;
using namespace optimus::accel;

namespace {

/** A fabric stub that records requests and answers on demand. */
class StubFabric : public fpga::FabricPort
{
  public:
    explicit StubFabric(std::uint32_t interval = 1)
        : _interval(interval)
    {
    }

    void
    dmaRequest(ccip::DmaTxnPtr txn) override
    {
        pending.push_back(std::move(txn));
    }
    std::uint32_t injectIntervalCycles() const override
    {
        return _interval;
    }

    void
    respond(std::size_t i, bool error = false)
    {
        ccip::DmaTxnPtr t = pending[i];
        pending.erase(pending.begin() +
                      static_cast<std::ptrdiff_t>(i));
        t->error = error;
        if (t->onComplete)
            t->onComplete(*t);
    }

    std::vector<ccip::DmaTxnPtr> pending;

  private:
    std::uint32_t _interval;
};

TEST(DmaPortTest, WindowLimitsOutstanding)
{
    sim::EventQueue eq;
    StubFabric fabric;
    DmaPort port(eq, 400, "p");
    port.attach(&fabric);
    port.setMaxOutstanding(4);

    for (int i = 0; i < 10; ++i)
        port.read(mem::Gva(64ULL * i), 64, [](ccip::DmaTxn &) {});
    eq.runAll();
    EXPECT_EQ(fabric.pending.size(), 4u);
    EXPECT_EQ(port.outstanding(), 4u);
    EXPECT_EQ(port.queued(), 6u);
    EXPECT_EQ(port.inFlight(), 10u);

    fabric.respond(0);
    eq.runAll();
    EXPECT_EQ(fabric.pending.size(), 4u); // refilled
    EXPECT_EQ(port.queued(), 5u);
}

TEST(DmaPortTest, InjectionPacingRespectsFabricInterval)
{
    sim::EventQueue eq;
    StubFabric fabric(2); // one request per two cycles
    DmaPort port(eq, 400, "p");
    port.attach(&fabric);
    port.setMaxOutstanding(64);

    for (int i = 0; i < 8; ++i)
        port.read(mem::Gva(64ULL * i), 64, [](ccip::DmaTxn &) {});
    eq.runAll();
    ASSERT_EQ(fabric.pending.size(), 8u);
    // Issue timestamps are at least 2 cycles (5 ns) apart.
    for (std::size_t i = 1; i < 8; ++i) {
        EXPECT_GE(fabric.pending[i]->issuedAt -
                      fabric.pending[i - 1]->issuedAt,
                  2 * 2500u);
    }
}

TEST(DmaPortTest, DrainCallbackFiresOnceIdle)
{
    sim::EventQueue eq;
    StubFabric fabric;
    DmaPort port(eq, 400, "p");
    port.attach(&fabric);

    bool drained = false;
    port.read(mem::Gva(0), 64, [](ccip::DmaTxn &) {});
    eq.runAll();
    port.notifyWhenDrained([&]() { drained = true; });
    EXPECT_FALSE(drained);
    fabric.respond(0);
    eq.runAll();
    EXPECT_TRUE(drained);

    // When already idle the callback fires immediately.
    bool again = false;
    port.notifyWhenDrained([&]() { again = true; });
    EXPECT_TRUE(again);
}

TEST(DmaPortTest, ResetDropsStaleResponses)
{
    sim::EventQueue eq;
    StubFabric fabric;
    DmaPort port(eq, 400, "p");
    port.attach(&fabric);

    int delivered = 0;
    port.read(mem::Gva(0), 64,
              [&](ccip::DmaTxn &) { ++delivered; });
    eq.runAll();
    port.reset();
    EXPECT_EQ(port.outstanding(), 0u);
    fabric.respond(0); // stale epoch: dropped
    eq.runAll();
    EXPECT_EQ(delivered, 0);
    EXPECT_TRUE(port.idle());
}

TEST(DmaPortTest, ErrorsAreCountedAndSurfaced)
{
    sim::EventQueue eq;
    StubFabric fabric;
    DmaPort port(eq, 400, "p");
    port.attach(&fabric);

    bool saw_error = false;
    port.read(mem::Gva(0), 64, [&](ccip::DmaTxn &t) {
        saw_error = t.error;
    });
    eq.runAll();
    fabric.respond(0, /*error=*/true);
    eq.runAll();
    EXPECT_TRUE(saw_error);
    EXPECT_EQ(port.errors(), 1u);
}

class AccelRegFixture : public ::testing::Test
{
  protected:
    sim::EventQueue eq;
    sim::PlatformParams params;
    StubFabric fabric;
    MembenchAccel accel{eq, params, "mb"};

    AccelRegFixture() { accel.attachFabric(&fabric); }
};

TEST_F(AccelRegFixture, RegisterFileReadback)
{
    accel.mmioWrite(reg::appReg(0), 0x1234);
    accel.mmioWrite(reg::appReg(31), 0x5678);
    EXPECT_EQ(accel.mmioRead(reg::appReg(0)), 0x1234u);
    EXPECT_EQ(accel.mmioRead(reg::appReg(31)), 0x5678u);
    EXPECT_EQ(accel.mmioRead(reg::kStatus),
              static_cast<std::uint64_t>(Status::kIdle));
    // Unknown offsets read as zero, writes are ignored.
    EXPECT_EQ(accel.mmioRead(0x9990), 0u);
    accel.mmioWrite(reg::kStatus, 99); // read-only
    EXPECT_EQ(accel.mmioRead(reg::kStatus),
              static_cast<std::uint64_t>(Status::kIdle));
}

TEST_F(AccelRegFixture, StateSizeCoversHeaderAndArchState)
{
    EXPECT_GE(accel.mmioRead(reg::kStateSize), 24u + 48u);
    accel.setSyntheticStateBytes(1 << 20);
    EXPECT_EQ(accel.mmioRead(reg::kStateSize), 1u << 20);
}

TEST_F(AccelRegFixture, StartRunsAndDoorbellRings)
{
    int doorbells = 0;
    accel.setDoorbell([&](Accelerator &) { ++doorbells; });
    accel.mmioWrite(reg::appReg(MembenchAccel::kRegBase), 0x10000);
    accel.mmioWrite(reg::appReg(MembenchAccel::kRegWset), 4096);
    accel.mmioWrite(reg::appReg(MembenchAccel::kRegTarget), 3);
    accel.mmioWrite(reg::kCtrl, ctrl::kStart);
    EXPECT_EQ(accel.status(), Status::kRunning);
    eq.runAll();
    // Answer the three reads.
    while (!fabric.pending.empty()) {
        fabric.respond(0);
        eq.runAll();
    }
    EXPECT_EQ(accel.status(), Status::kDone);
    EXPECT_EQ(accel.progress(), 3u);
    EXPECT_EQ(doorbells, 1);
}

TEST_F(AccelRegFixture, HardResetClearsEverything)
{
    accel.mmioWrite(reg::appReg(0), 77);
    accel.mmioWrite(reg::kStateBuf, 0xbeef);
    accel.hardReset();
    EXPECT_EQ(accel.mmioRead(reg::appReg(0)), 0u);
    EXPECT_EQ(accel.mmioRead(reg::kStateBuf), 0u);
    EXPECT_EQ(accel.status(), Status::kIdle);
}

TEST_F(AccelRegFixture, SoftResetKeepsAppRegisters)
{
    accel.mmioWrite(reg::appReg(0), 77);
    accel.mmioWrite(reg::kCtrl, ctrl::kSoftReset);
    EXPECT_EQ(accel.mmioRead(reg::appReg(0)), 77u);
    EXPECT_EQ(accel.status(), Status::kIdle);
}

} // namespace
