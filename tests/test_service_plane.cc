/**
 * @file
 * Service-plane tests: arrival determinism (open and closed loop),
 * admission control under queue pressure, batching correctness and
 * its context-switch savings, traffic-generator statistics, and the
 * fault-campaign integration (watchdog quarantine -> error
 * completions -> retry, with co-tenant isolation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "exp/builders.hh"
#include "hv/system.hh"
#include "svc/service_plane.hh"
#include "svc/traffic.hh"

using namespace optimus;
using svc::ArrivalKind;
using svc::ArrivalSpec;
using svc::ServicePlane;
using svc::Tenant;
using svc::TenantConfig;

namespace {

TenantConfig
shaTenant(const std::string &name, std::uint32_t slot,
          std::uint64_t seed)
{
    TenantConfig cfg;
    cfg.name = name;
    cfg.app = "SHA";
    cfg.bytes = 512;
    cfg.seed = seed;
    cfg.slot = slot;
    cfg.arrivals.kind = ArrivalKind::kPoisson;
    cfg.arrivals.ratePerSec = 50000.0;
    cfg.sloNs = 200000; // 200us
    return cfg;
}

TEST(TrafficTest, DetLogMatchesLibm)
{
    // detLog only needs to be *deterministic*, but it should also be
    // accurate; compare against libm over the (0, 1] sampler range.
    sim::Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        double u =
            static_cast<double>((rng.next() >> 11) + 1) * 0x1.0p-53;
        EXPECT_NEAR(svc::detLog(u), std::log(u),
                    1e-12 * (1.0 + std::abs(std::log(u))));
    }
    EXPECT_DOUBLE_EQ(svc::detLog(1.0), 0.0);
}

TEST(TrafficTest, GeneratorsAreDeterministicAndShaped)
{
    for (auto kind : {ArrivalKind::kFixed, ArrivalKind::kPoisson,
                      ArrivalKind::kBursty}) {
        ArrivalSpec spec;
        spec.kind = kind;
        spec.ratePerSec = 100000.0;
        spec.onFraction = 0.25;
        spec.period = sim::kTickMs;
        svc::ArrivalGen a(spec, 42), b(spec, 42), c(spec, 43);
        bool differs = false;
        sim::Tick prev = 0;
        sim::Tick last = 0;
        for (int i = 0; i < 2000; ++i) {
            sim::Tick va = a.nextOffset();
            EXPECT_EQ(va, b.nextOffset()); // same seed: identical
            if (va != c.nextOffset())
                differs = true;
            EXPECT_GE(va, prev); // monotone offsets
            prev = va;
            last = va;
        }
        // Fixed is seed-independent; the random processes are not.
        if (kind != ArrivalKind::kFixed)
            EXPECT_TRUE(differs);
        // Long-run mean rate within 15% of the request.
        double secs = static_cast<double>(last) /
                      static_cast<double>(sim::kTickSec);
        double rate = 2000.0 / secs;
        EXPECT_NEAR(rate, spec.ratePerSec, spec.ratePerSec * 0.15);
    }
}

TEST(TrafficTest, BurstyRespectsOnOffSchedule)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::kBursty;
    spec.ratePerSec = 200000.0;
    spec.onFraction = 0.25;
    spec.period = sim::kTickMs;
    svc::ArrivalGen g(spec, 7);
    sim::Tick on = static_cast<sim::Tick>(
        spec.onFraction * static_cast<double>(spec.period));
    for (int i = 0; i < 2000; ++i) {
        sim::Tick t = g.nextOffset();
        // Arrivals only land in the ON window of each period.
        EXPECT_LT(t % spec.period, on) << "offset " << t;
    }
}

/** Run one single-tenant plane and return its fingerprint. */
std::uint64_t
runOnce(const TenantConfig &cfg, sim::Tick window)
{
    hv::System sys(hv::makeOptimusConfig("SHA", 1));
    ServicePlane plane(sys);
    plane.addTenant(cfg);
    plane.run(window);
    return plane.fingerprint();
}

TEST(ServicePlaneTest, OpenLoopDeterminism)
{
    TenantConfig cfg = shaTenant("t0", 0, 5);
    std::uint64_t a = runOnce(cfg, 2 * sim::kTickMs);
    std::uint64_t b = runOnce(cfg, 2 * sim::kTickMs);
    EXPECT_EQ(a, b);
    cfg.seed = 6;
    EXPECT_NE(runOnce(cfg, 2 * sim::kTickMs), a);
}

TEST(ServicePlaneTest, ClosedLoopDeterminism)
{
    TenantConfig cfg = shaTenant("t0", 0, 5);
    cfg.users = 4;
    cfg.think = 20 * sim::kTickUs;
    std::uint64_t a = runOnce(cfg, 2 * sim::kTickMs);
    std::uint64_t b = runOnce(cfg, 2 * sim::kTickMs);
    EXPECT_EQ(a, b);
    cfg.think = 30 * sim::kTickUs;
    EXPECT_NE(runOnce(cfg, 2 * sim::kTickMs), a);
}

TEST(ServicePlaneTest, ServesAndVerifiesRequests)
{
    hv::System sys(hv::makeOptimusConfig("SHA", 1));
    ServicePlane plane(sys);
    Tenant &t = plane.addTenant(shaTenant("t0", 0, 5));
    plane.run(2 * sim::kTickMs);

    EXPECT_GT(t.completed(), 20u);
    EXPECT_EQ(t.verifyFailures(), 0u);
    EXPECT_EQ(t.arrivals(), t.admitted() + t.rejected());
    // Fully drained: every admitted request was accounted.
    EXPECT_EQ(t.queueLength(), 0u);
    EXPECT_EQ(t.admitted(), t.completed() + t.dropped());
    // Latency accounting covered every completion.
    EXPECT_EQ(t.e2eHist().count(), t.completed());
    EXPECT_EQ(t.serviceHist().count(), t.completed());
    EXPECT_GT(t.e2eHist().p50(), 0u);
    // e2e >= service (queue wait is non-negative).
    EXPECT_GE(t.e2eHist().sum(), t.serviceHist().sum());
    // SLO accounting partitions completions.
    EXPECT_EQ(t.goodput() + t.sloViolations(), t.completed());
}

TEST(ServicePlaneTest, QueueFullRejectionsAreCounted)
{
    hv::System sys(hv::makeOptimusConfig("SHA", 1));
    ServicePlane plane(sys);
    TenantConfig cfg = shaTenant("t0", 0, 5);
    cfg.queueDepth = 2;
    cfg.arrivals.ratePerSec = 2e6; // far over capacity
    Tenant &t = plane.addTenant(cfg);
    plane.run(sim::kTickMs);

    EXPECT_GT(t.rejected(), 0u);
    EXPECT_EQ(t.arrivals(), t.admitted() + t.rejected());
    EXPECT_EQ(t.admitted(), t.completed() + t.dropped());
    EXPECT_EQ(t.dropped(), 0u); // no faults: nothing dropped
}

TEST(ServicePlaneTest, BatchingAmortizesContextSwitches)
{
    // Two co-tenants time-share slot 0; batched dispatch must cut
    // context switches while serving the same request stream with
    // per-request verification intact.
    auto runPair = [](unsigned batch, std::uint64_t *switches,
                      std::uint64_t *completed) {
        hv::System sys(hv::makeOptimusConfig("SHA", 1));
        // A service-scale slice: without it the 10ms default means
        // at most one switch inside the whole 2ms window. Must stay
        // above the 38us switch cost or the slot just thrashes.
        sys.hv.setPolicy(0, hv::SchedPolicy::kRoundRobin,
                         100 * sim::kTickUs);
        ServicePlane plane(sys);
        for (int i = 0; i < 2; ++i) {
            TenantConfig cfg = shaTenant(
                "t" + std::to_string(i), 0,
                static_cast<std::uint64_t>(5 + i));
            cfg.arrivals.kind = ArrivalKind::kFixed;
            cfg.arrivals.ratePerSec = 40000.0;
            cfg.batchMin = batch;
            cfg.batchMax = batch;
            plane.addTenant(cfg);
        }
        plane.run(2 * sim::kTickMs);
        *switches = sys.hv.contextSwitches();
        *completed = 0;
        for (std::size_t i = 0; i < plane.numTenants(); ++i) {
            const Tenant &t = plane.tenant(i);
            EXPECT_EQ(t.verifyFailures(), 0u);
            EXPECT_GT(t.batches(), 0u);
            *completed += t.completed();
        }
    };
    std::uint64_t sw1 = 0, done1 = 0, sw8 = 0, done8 = 0;
    runPair(1, &sw1, &done1);
    runPair(8, &sw8, &done8);
    EXPECT_EQ(done1, done8); // same offered load fully served
    EXPECT_LT(sw8, sw1);     // batching amortizes the 38us switch
}

TEST(ServicePlaneTest, FaultCampaignRetriesAndIsolates)
{
    // A hang on slot 0 plus an armed watchdog: tenant a's in-flight
    // request completes as an error (ERR_STATUS path), the plane
    // retries it after the quarantine reset, and co-tenant b on
    // slot 1 keeps its tail latency.
    auto runPair = [](const std::string &faults, std::uint64_t *aErr,
                      std::uint64_t *aViol, std::uint64_t *bP99,
                      std::uint64_t *bDone) {
        hv::System sys(hv::makeOptimusConfig("SHA", 2));
        ServicePlane plane(sys);
        TenantConfig a = shaTenant("a", 0, 5);
        TenantConfig b = shaTenant("b", 1, 6);
        a.arrivals.kind = b.arrivals.kind = ArrivalKind::kFixed;
        a.arrivals.ratePerSec = b.arrivals.ratePerSec = 20000.0;
        // Tight SLO so the ~100us quarantine-and-retry stall (and
        // the backlog behind it) registers as violations.
        a.sloNs = b.sloNs = 50000;
        Tenant &ta = plane.addTenant(a);
        Tenant &tb = plane.addTenant(b);
        auto inj = exp::installFaults(sys, faults);
        plane.run(2 * sim::kTickMs);
        *aErr = ta.errors();
        *aViol = ta.sloViolations();
        *bP99 = tb.e2eHist().p99();
        *bDone = tb.completed();
        EXPECT_EQ(tb.verifyFailures(), 0u);
    };

    std::uint64_t cleanErr = 0, cleanViol = 0, cleanP99 = 0,
                  cleanDone = 0;
    runPair("", &cleanErr, &cleanViol, &cleanP99, &cleanDone);
    EXPECT_EQ(cleanErr, 0u);

    std::uint64_t err = 0, viol = 0, p99 = 0, done = 0;
    runPair("hang@0:at=200us;watchdog:deadline=100us", &err, &viol,
            &p99, &done);
    // The hung tenant observed errors and its SLO violations rose.
    EXPECT_GT(err, 0u);
    EXPECT_GT(viol, cleanViol);
    // The co-tenant kept serving; p99 within 25% of fault-free.
    EXPECT_EQ(done, cleanDone);
    EXPECT_LE(p99, cleanP99 + cleanP99 / 4);
}

} // namespace
