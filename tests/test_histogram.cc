/**
 * @file
 * Unit tests for the log-bucketed sim::Histogram: bucket-boundary
 * arithmetic, exact percentiles on known distributions, merge,
 * move-safety under telemetry registration, and byte-deterministic
 * JSON export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <utility>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"

using namespace optimus;
using sim::Histogram;

namespace {

TEST(HistogramTest, LinearRegionIsExact)
{
    // Values below kLinearMax get width-1 buckets: index == value,
    // [lo, hi) == [v, v+1).
    for (std::uint64_t v = 0; v < Histogram::kLinearMax; ++v) {
        auto idx = Histogram::bucketIndex(v);
        EXPECT_EQ(idx, static_cast<std::uint32_t>(v));
        EXPECT_EQ(Histogram::bucketLo(idx), v);
        EXPECT_EQ(Histogram::bucketHi(idx), v + 1);
    }
}

TEST(HistogramTest, BucketBoundsBracketEveryValue)
{
    // Sweep values across many octaves (including the boundaries):
    // every value must land in a bucket whose [lo, hi) contains it,
    // indices must be monotone, and lo/hi must tile without gaps.
    std::vector<std::uint64_t> probes;
    for (int shift = 0; shift < 63; ++shift) {
        std::uint64_t base = 1ULL << shift;
        probes.push_back(base - 1);
        probes.push_back(base);
        probes.push_back(base + 1);
        probes.push_back(base + base / 3);
    }
    probes.push_back(~std::uint64_t{0});
    std::uint32_t prev_idx = 0;
    std::uint64_t prev_val = 0;
    for (std::uint64_t v : probes) {
        auto idx = Histogram::bucketIndex(v);
        EXPECT_LE(Histogram::bucketLo(idx), v) << "v=" << v;
        // The very top bucket's bound saturates (2^64 - 1 is
        // inclusive there); everywhere else hi is exclusive.
        EXPECT_GE(Histogram::bucketHi(idx), v) << "v=" << v;
        if (v != ~std::uint64_t{0})
            EXPECT_GT(Histogram::bucketHi(idx), v) << "v=" << v;
        if (v > prev_val)
            EXPECT_GE(idx, prev_idx) << "v=" << v;
        prev_idx = idx;
        prev_val = v;
    }
}

TEST(HistogramTest, AdjacentBucketsTile)
{
    // hi(i) == lo(i+1) across the linear/log seam and octave seams.
    for (std::uint32_t idx = 0; idx < 600; ++idx)
        EXPECT_EQ(Histogram::bucketHi(idx),
                  Histogram::bucketLo(idx + 1))
            << "idx=" << idx;
}

TEST(HistogramTest, RelativeErrorBounded)
{
    // The log-linear layout guarantees bucket width <= lo / 32 for
    // all log buckets (kSubBits = 6), i.e. ~3.1% relative error.
    sim::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        std::uint64_t v = rng.next() >> (rng.next() % 40);
        if (v < Histogram::kLinearMax)
            continue;
        auto idx = Histogram::bucketIndex(v);
        std::uint64_t lo = Histogram::bucketLo(idx);
        std::uint64_t width = Histogram::bucketHi(idx) - lo;
        EXPECT_LE(width, lo / (Histogram::kSubPerOctave / 2))
            << "v=" << v;
    }
}

TEST(HistogramTest, ExactPercentilesOnKnownDistribution)
{
    // 1..1000 each once: percentile(p) must equal the true p-th
    // value exactly in the linear region and within 3.1% above it.
    Histogram h(nullptr, "h", "t");
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), 1000u * 1001u / 2);
    EXPECT_EQ(h.percentile(1), 10u);  // exact: 10 < 64
    EXPECT_EQ(h.percentile(5), 50u);  // exact
    for (double p : {25.0, 50.0, 90.0, 99.0, 99.9}) {
        auto expect = static_cast<std::uint64_t>(p * 10.0);
        std::uint64_t got = h.percentile(p);
        EXPECT_GE(got, expect - expect / 16) << "p=" << p;
        EXPECT_LE(got, expect + expect / 16) << "p=" << p;
    }
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, PercentileEdgeCases)
{
    Histogram h(nullptr, "h", "t");
    EXPECT_EQ(h.percentile(50), 0u); // empty
    h.sample(42);
    // A single sample is every percentile.
    EXPECT_EQ(h.percentile(0), 42u);
    EXPECT_EQ(h.percentile(50), 42u);
    EXPECT_EQ(h.percentile(100), 42u);
}

TEST(HistogramTest, MergeMatchesCombinedStream)
{
    sim::Rng rng(11);
    Histogram a(nullptr, "a", "t");
    Histogram b(nullptr, "b", "t");
    Histogram all(nullptr, "all", "t");
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.next() >> (rng.next() % 50);
        (i % 2 ? a : b).sample(v);
        all.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
    EXPECT_EQ(a.buckets(), all.buckets());
    std::ostringstream ja, jall;
    a.json(ja);
    all.json(jall);
    EXPECT_EQ(ja.str(), jall.str());
}

TEST(HistogramTest, MergedPercentilesWithinBucketErrorBound)
{
    // The fleet plane reports p99 over histograms merged across
    // nodes. merge() is bucket-wise exact, so the only error left
    // against the true sorted-sample percentile is the bucket width
    // itself: at kSubBits = 6, width <= lo / 32, i.e. a 2/2^6 =
    // 3.125% relative bound (exact in the linear region).
    sim::Rng rng(17);
    Histogram shards[4] = {Histogram(nullptr, "s0", "t"),
                           Histogram(nullptr, "s1", "t"),
                           Histogram(nullptr, "s2", "t"),
                           Histogram(nullptr, "s3", "t")};
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t v = rng.next() >> (rng.next() % 44);
        values.push_back(v);
        shards[i % 4].sample(v);
    }
    Histogram merged(nullptr, "m", "t");
    for (Histogram &s : shards)
        merged.merge(s);
    ASSERT_EQ(merged.count(), values.size());

    std::sort(values.begin(), values.end());
    for (double p : {1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
        // Same rank convention as Histogram::percentile().
        auto rank = static_cast<std::uint64_t>(std::ceil(
            p / 100.0 * static_cast<double>(values.size())));
        rank = std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(rank, values.size()));
        std::uint64_t exact = values[rank - 1];
        std::uint64_t got = merged.percentile(p);
        std::uint64_t diff =
            got > exact ? got - exact : exact - got;
        EXPECT_LE(diff * 32, exact)
            << "p=" << p << " exact=" << exact << " got=" << got;
    }
}

TEST(HistogramTest, MergeEmptyIsIdentity)
{
    Histogram a(nullptr, "a", "t");
    Histogram e(nullptr, "e", "t");
    a.sample(5);
    a.merge(e); // no-op
    EXPECT_EQ(a.count(), 1u);
    e.merge(a); // adopt
    EXPECT_EQ(e.count(), 1u);
    EXPECT_EQ(e.min(), 5u);
    EXPECT_EQ(e.max(), 5u);
}

TEST(HistogramTest, MoveKeepsTelemetryRegistration)
{
    // Mirror of the IOTLB-rebuild regression: stats that relocate
    // (vector growth, move assignment) must follow their telemetry
    // registration instead of leaving dangling pointers.
    sim::Telemetry t("sys");
    sim::TelemetryNode &n = t.node("svc");
    {
        std::vector<Histogram> v;
        v.emplace_back(&n, "h0", "first");
        v[0].sample(10);
        // Force reallocation: the moved-into objects must replace
        // their predecessors in the node's registry.
        for (int i = 1; i < 32; ++i)
            v.emplace_back(&n, ("h" + std::to_string(i)).c_str(),
                           "more");
        EXPECT_EQ(n.stats().size(), 32u);
        std::ostringstream os;
        t.dump(os);
        EXPECT_NE(os.str().find("svc.h0"), std::string::npos);
        EXPECT_NE(os.str().find("p50=10"), std::string::npos);
    }
    // All unregistered on destruction.
    EXPECT_EQ(n.stats().size(), 0u);
}

TEST(HistogramTest, JsonIsByteDeterministic)
{
    auto fill = [](Histogram &h) {
        sim::Rng rng(13);
        for (int i = 0; i < 3000; ++i)
            h.sample(rng.next() >> (rng.next() % 48));
    };
    Histogram a(nullptr, "a", "t");
    Histogram b(nullptr, "b", "t");
    fill(a);
    fill(b);
    std::ostringstream ja, jb;
    a.json(ja);
    b.json(jb);
    EXPECT_EQ(ja.str(), jb.str());
    // Integer-only payload: no floating-point formatting anywhere.
    EXPECT_EQ(ja.str().find('.'), std::string::npos);
    EXPECT_EQ(ja.str().find("e+"), std::string::npos);
}

TEST(HistogramTest, ResetClears)
{
    Histogram h(nullptr, "h", "t");
    h.sample(100);
    h.sample(1000000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_TRUE(h.buckets().empty());
    std::ostringstream os;
    h.json(os);
    EXPECT_NE(os.str().find("\"buckets\": []"), std::string::npos);
}

} // namespace
