/**
 * @file
 * Simulation-kernel tests: event ordering, clock domains, the stats
 * package, and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/clocked.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "sim/types.hh"

using namespace optimus::sim;

namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&]() { order.push_back(3); });
    eq.scheduleAt(10, [&]() { order.push_back(1); });
    eq.scheduleAt(20, [&]() { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueueTest, TiesBreakInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i]() { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 5)
            eq.scheduleIn(10, chain);
    };
    eq.scheduleIn(10, chain);
    eq.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueueTest, RunUntilStopsAtLimitAndAdvancesTime)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&]() { ++fired; });
    eq.scheduleAt(100, [&]() { ++fired; });
    EXPECT_EQ(eq.runUntil(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunOneOnEmptyReturnsFalse)
{
    EventQueue eq;
    EXPECT_FALSE(eq.runOne());
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTick(), kTickForever);
}

TEST(EventQueueTest, ExecutedCountsAllEvents)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleIn(static_cast<Tick>(i), []() {});
    eq.runAll();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(ClockedTest, PeriodsMatchTable1Frequencies)
{
    EventQueue eq;
    // The paper's clock domains: 400/200/100 MHz.
    EXPECT_EQ(Clocked(eq, 400).clockPeriod(), 2500u);
    EXPECT_EQ(Clocked(eq, 200).clockPeriod(), 5000u);
    EXPECT_EQ(Clocked(eq, 100).clockPeriod(), 10000u);
}

TEST(ClockedTest, NextEdgeAligns)
{
    EventQueue eq;
    Clocked c(eq, 400); // 2500 ps period
    eq.runUntil(3000);
    EXPECT_EQ(c.nextEdge(), 5000u);
    eq.runUntil(5000);
    EXPECT_EQ(c.nextEdge(), 5000u); // exactly on an edge
}

TEST(ClockedTest, ScheduleCyclesLandsOnEdges)
{
    EventQueue eq;
    Clocked c(eq, 400);
    eq.runUntil(3100);
    Tick fired_at = 0;
    c.scheduleCycles(2, [&]() { fired_at = eq.now(); });
    eq.runAll();
    EXPECT_EQ(fired_at, 5000u + 2 * 2500u);
}

TEST(StatsTest, CounterAndAverage)
{
    Telemetry t("test");
    Counter c(&t.root(), "c", "a counter");
    Average a(&t.root(), "a", "an average");
    c += 5;
    ++c;
    EXPECT_EQ(c.value(), 6u);
    a.sample(1.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_EQ(t.root().stats().size(), 2u);

    t.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(a.count(), 0u);
}

TEST(StatsTest, HistogramPercentiles)
{
    Histogram h(nullptr, "h", "latency");
    for (std::uint64_t i = 1; i <= 50; ++i)
        h.sample(i); // width-1 buckets below 64: exact
    EXPECT_EQ(h.count(), 50u);
    EXPECT_EQ(h.percentile(50), 25u);
    EXPECT_EQ(h.percentile(100), 50u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 50u);
    h.sample(1'000'000);
    EXPECT_EQ(h.max(), 1'000'000u);
    // ceil(0.99 * 51) = 51: p99 is now the outlier, reported as its
    // log-bucket midpoint within the ~3.1% quantization bound.
    std::uint64_t p99 = h.percentile(99);
    EXPECT_GE(p99, 1'000'000u * 31 / 32);
    EXPECT_LE(p99, 1'000'000u * 33 / 32);
    // ceil(0.95 * 51) = 49, still in the exact linear region.
    EXPECT_EQ(h.percentile(95), 49u);
}

TEST(StatsTest, DumpContainsNamesAndValues)
{
    Telemetry t("grp");
    Counter c(&t.node("sub"), "my_counter", "desc");
    c += 42;
    std::ostringstream os;
    t.dump(os);
    EXPECT_NE(os.str().find("sub.my_counter"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(RngTest, DeterministicAndSeedSensitive)
{
    Rng a(1);
    Rng b(1);
    Rng c(2);
    bool saw_diff = false;
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            saw_diff = true;
    }
    EXPECT_TRUE(saw_diff);
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform)
{
    Rng rng(3);
    std::vector<int> buckets(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = rng.below(10);
        ASSERT_LT(v, 10u);
        ++buckets[v];
    }
    for (int b : buckets) {
        EXPECT_GT(b, n / 10 - n / 50);
        EXPECT_LT(b, n / 10 + n / 50);
    }
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, StateRoundTrip)
{
    Rng a(5);
    for (int i = 0; i < 13; ++i)
        a.next();
    Rng b(99);
    b.setState(a.state());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(TypesTest, FrequencyConversions)
{
    EXPECT_EQ(periodFromMhz(400), 2500u);
    EXPECT_EQ(periodFromMhz(2800), 357u); // CPU clock, truncated
    using namespace optimus::sim;
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(2_MiB, 2097152u);
    EXPECT_EQ(64_GiB, 64ULL << 30);
}

} // namespace
