/**
 * @file
 * Split-platform tests: the domain-plan coupling-class validator
 * (illegal plans die naming the offending synchronous edge), digest
 * equality of a full fault-campaign System across domain plans and
 * pool sizes, and the PlatformConfig::totalDomains() sizing contract
 * for harness actors on extra domains.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/builders.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"
#include "sim/domain.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

PlatformConfig
cfgWithPlan(DomainPlan plan, std::uint32_t n = 1)
{
    PlatformConfig c = makeOptimusConfig("MB", n);
    c.domains = plan;
    return c;
}

// ------------------------------------------- coupling-class validator

using SplitPlatformDeathTest = ::testing::Test;

TEST(SplitPlatformDeathTest, AccelAwayFromCcipNamesFabricEdge)
{
    DomainPlan p;
    p.accel = 1;
    // The fabric ports and response delivery are direct calls, so
    // accel and ccip must share a domain; the validator must say so.
    EXPECT_DEATH({ System sys(cfgWithPlan(p)); }, "accel<->ccip");
}

TEST(SplitPlatformDeathTest, HvAwayFromCcipNamesMmioTrapEdge)
{
    DomainPlan p;
    p.hv = 1;
    EXPECT_DEATH({ System sys(cfgWithPlan(p)); }, "hv<->ccip");
}

TEST(SplitPlatformDeathTest, IommuAwayFromMemNamesHostBridgeEdge)
{
    DomainPlan p;
    p.iommu = 1; // mem stays on 0: cuts the walk->access flow
    EXPECT_DEATH({ System sys(cfgWithPlan(p)); }, "iommu<->mem");
}

// -------------------------------------- plan/pool digest equivalence

/** Everything a campaign run can observably produce. */
struct Digest
{
    std::vector<std::uint64_t> results;
    std::vector<accel::Status> statuses;
    sim::Tick end = 0;
    std::uint64_t injections = 0;
    std::uint64_t epochs = 0;
    std::string telemetry;

    bool
    operator==(const Digest &o) const
    {
        return results == o.results && statuses == o.statuses &&
               end == o.end && injections == o.injections &&
               epochs == o.epochs && telemetry == o.telemetry;
    }
};

/**
 * A full fault campaign — drops with retry, delays, a forced
 * translation fault, periodic IOTLB poisoning (host-domain one-shots)
 * and a wild DMA — over two MB tenants, run to completion plus a
 * drain of the trailing one-shots.
 */
Digest
runCampaign(bool split, unsigned sim_threads)
{
    PlatformConfig c = makeOptimusConfig("MB", 2);
    if (split)
        c.domains = splitPlan();
    System sys(std::move(c), sim_threads);
    auto inj = exp::installFaults(
        sys,
        "drop:rate=0.2,count=4,seed=7;"
        "delay:extra=300ns,rate=0.1,seed=9;"
        "iommu_fault:rate=1,count=1,vm=1;"
        "poison_iotlb:at=30us,period=20us,count=3,set=5;"
        "wild_dma@0:at=50us");
    AccelHandle &a = sys.attach(0);
    AccelHandle &b = sys.attach(1);
    auto wa = workload::Workload::create("MB", a, 1ULL << 20, 7);
    auto wb = workload::Workload::create("MB", b, 1ULL << 20, 11);
    wa->program();
    wb->program();
    a.start();
    b.start();

    Digest d;
    d.statuses.push_back(a.wait());
    d.statuses.push_back(b.wait());
    sys.run(sys.eq.now() + 200 * sim::kTickUs); // trailing one-shots
    d.results = {a.result(), b.result()};
    d.end = sys.eq.now();
    d.injections = inj->injections();
    d.epochs = sys.sched.epochs();
    std::ostringstream os;
    sys.telemetry.writeJson(os);
    d.telemetry = os.str();
    return d;
}

TEST(SplitPlatformTest, FaultCampaignDigestsMatchSingleDomain)
{
    Digest single = runCampaign(/*split=*/false, /*sim_threads=*/1);
    Digest split1 = runCampaign(/*split=*/true, /*sim_threads=*/1);
    Digest split2 = runCampaign(/*split=*/true, /*sim_threads=*/2);

    // The campaign actually perturbed the run, on both sides of the
    // package: drops/delays/wild DMA on the FPGA domain, poisoning
    // and the forced walk fault on the host domain.
    EXPECT_GE(single.injections, 5u);

    // Same events, same clocks, same stat tree — byte for byte —
    // whatever the plan or pool width.
    EXPECT_EQ(split1, single);
    EXPECT_EQ(split2, single);
}

TEST(SplitPlatformTest, SplitPlanActuallyCrossesDomains)
{
    PlatformConfig c = makeOptimusConfig("MB", 1);
    c.domains = splitPlan();
    System sys(std::move(c));
    EXPECT_EQ(sys.domains.size(), 2u);

    AccelHandle &h = sys.attach(0);
    auto wl = workload::Workload::create("MB", h, 1ULL << 20, 7);
    wl->program();
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_TRUE(wl->verify());
    // Every DMA translated and completed on the host shard, so the
    // scheduler must have carried traffic across the boundary.
    EXPECT_GT(sys.sched.delivered(), 0u);
    EXPECT_GT(sys.domains.queue(1).executed(), 0u);
}

TEST(SplitPlatformTest, ThreadLocalDefaultAppliesSplitPlan)
{
    bool prev = sim::setDefaultDomainSplit(true);
    {
        // A stock single-domain config picks up the split plan, the
        // way exp::Runner --domain-plan split arranges it per worker.
        System sys(makeOptimusConfig("MB", 1));
        EXPECT_EQ(sys.domains.size(), 2u);
        EXPECT_EQ(sys.platform.config().domains.iommu, 1u);
    }
    sim::setDefaultDomainSplit(false);
    {
        // With the default off, the stock config stays single-domain.
        System sys(makeOptimusConfig("MB", 1));
        EXPECT_EQ(sys.domains.size(), 1u);
        EXPECT_TRUE(sys.platform.config().domains.singleDomain());
    }
    sim::setDefaultDomainSplit(prev);
}

// ------------------------------------ totalDomains sizing regression

TEST(TotalDomainsTest, ExtraDomainActorRidesAlongWithSplitPlan)
{
    PlatformConfig c = makeOptimusConfig("MB", 1);
    c.domains = splitPlan();
    c.extraDomains = 1;
    ASSERT_EQ(c.totalDomains(), 3u);

    System sys(std::move(c));
    ASSERT_EQ(sys.domains.size(), 3u);

    // A harness actor on the extra shard, coupled through a deferred
    // channel — the only legal way in. Regression: DomainSet used to
    // be sized from the plan alone, which made this construction
    // out-of-bounds.
    sim::DomainId extra = sys.domains.size() - 1;
    sim::Channel<int> ch(sys.domains, extra, 0,
                         sys.platform.params().upiLatency,
                         "test.extra_actor",
                         sim::ChannelBase::Delivery::kDeferred);
    int got = 0;
    ch.onReceive([&](int v) { got = v; });
    sys.domains.queue(extra).scheduleIn(0, [&]() { ch.send(42); });
    sys.runAll();
    EXPECT_EQ(got, 42);
}

} // namespace
