/**
 * @file
 * Known-answer tests for the cryptographic kernels: FIPS-197 AES
 * vectors, RFC 1321 MD5 vectors, FIPS 180-4 SHA vectors, and
 * serialization round-trips used by accelerator preemption.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "accel/algo/aes128.hh"
#include "accel/algo/md5.hh"
#include "accel/algo/sha.hh"

using namespace optimus::algo;

namespace {

std::string
hex(const std::uint8_t *data, std::size_t len)
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    for (std::size_t i = 0; i < len; ++i) {
        s.push_back(digits[data[i] >> 4]);
        s.push_back(digits[data[i] & 0xf]);
    }
    return s;
}

TEST(Aes128Test, Fips197AppendixB)
{
    // FIPS-197 Appendix B example.
    Aes128::Key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                       0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                       0x4f, 0x3c};
    std::uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                              0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                              0xe0, 0x37, 0x07, 0x34};
    Aes128 aes(key);
    aes.encryptBlock(block);
    EXPECT_EQ(hex(block, 16), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128Test, Fips197AppendixCExample)
{
    // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...
    Aes128::Key key;
    for (int i = 0; i < 16; ++i)
        key[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i);
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i)
        block[i] = static_cast<std::uint8_t>(i * 0x11);
    Aes128 aes(key);
    aes.encryptBlock(block);
    EXPECT_EQ(hex(block, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128Test, EcbEncryptsEveryBlockIndependently)
{
    Aes128::Key key{};
    Aes128 aes(key);
    std::uint8_t buf[64] = {};
    aes.encryptEcb(buf, sizeof(buf));
    // Identical plaintext blocks yield identical ciphertext blocks.
    EXPECT_EQ(0, std::memcmp(buf, buf + 16, 16));
    EXPECT_EQ(0, std::memcmp(buf, buf + 32, 16));
}

TEST(Md5Test, Rfc1321Vectors)
{
    auto check = [](const std::string &in, const std::string &want) {
        Md5::Digest d = Md5::hash(in.data(), in.size());
        EXPECT_EQ(hex(d.data(), d.size()), want) << "input: " << in;
    };
    check("", "d41d8cd98f00b204e9800998ecf8427e");
    check("a", "0cc175b9c0f1b6a831c399e269772661");
    check("abc", "900150983cd24fb0d6963f7d28e17f72");
    check("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    check("abcdefghijklmnopqrstuvwxyz",
          "c3fcd3d76192e4007dfb496cca67e13b");
    check("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123"
          "456789",
          "d174ab98d277d9f5a5611c2c9f419d9f");
    check("1234567890123456789012345678901234567890123456789012345"
          "6789012345678901234567890",
          "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, IncrementalMatchesOneShot)
{
    std::string input(1000, 'x');
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<char>('a' + i % 26);

    Md5 inc;
    for (std::size_t off = 0; off < input.size(); off += 37) {
        std::size_t n = std::min<std::size_t>(37, input.size() - off);
        inc.update(input.data() + off, n);
    }
    EXPECT_EQ(inc.finish(), Md5::hash(input.data(), input.size()));
}

TEST(Md5Test, SerializeRoundTrip)
{
    std::string part1 = "The quick brown fox ";
    std::string part2 = "jumps over the lazy dog";

    Md5 a;
    a.update(part1.data(), part1.size());
    auto blob = a.serialize();

    Md5 b;
    b.deserialize(blob);
    b.update(part2.data(), part2.size());
    a.update(part2.data(), part2.size());
    EXPECT_EQ(a.finish(), b.finish());
}

TEST(Sha256Test, Fips180Vectors)
{
    auto d1 = Sha256::hash("abc", 3);
    EXPECT_EQ(hex(d1.data(), d1.size()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410f"
              "f61f20015ad");
    auto d2 = Sha256::hash("", 0);
    EXPECT_EQ(hex(d2.data(), d2.size()),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495"
              "991b7852b855");
    std::string two_blocks =
        "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    auto d3 = Sha256::hash(two_blocks.data(), two_blocks.size());
    EXPECT_EQ(hex(d3.data(), d3.size()),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ec"
              "edd419db06c1");
}

TEST(Sha256Test, DoubleHashMatchesComposition)
{
    std::string msg = "bitcoin block header";
    auto once = Sha256::hash(msg.data(), msg.size());
    auto twice = Sha256::hash(once.data(), once.size());
    EXPECT_EQ(Sha256::doubleHash(msg.data(), msg.size()), twice);
}

TEST(Sha512Test, Fips180Vectors)
{
    auto d1 = Sha512::hash("abc", 3);
    EXPECT_EQ(hex(d1.data(), d1.size()),
              "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9e"
              "eee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423"
              "643ce80e2a9ac94fa54ca49f");
    auto d2 = Sha512::hash("", 0);
    EXPECT_EQ(hex(d2.data(), d2.size()),
              "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4"
              "a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd"
              "47417a81a538327af927da3e");
}

TEST(Sha512Test, IncrementalAndSerializeRoundTrip)
{
    std::string input(4096, 0);
    for (std::size_t i = 0; i < input.size(); ++i)
        input[i] = static_cast<char>(i % 251);

    Sha512 a;
    a.update(input.data(), 1000);
    auto blob = a.serialize();
    Sha512 b;
    b.deserialize(blob);
    a.update(input.data() + 1000, input.size() - 1000);
    b.update(input.data() + 1000, input.size() - 1000);
    EXPECT_EQ(a.finish(), b.finish());
}

} // namespace
