/**
 * @file
 * Preemption-interface tests (Section 4.2): drain-save-resume round
 * trips preserve results for the conforming microbenchmarks (MB, LL)
 * and the streaming accelerators; forced reset fires on accelerators
 * that cannot cede; completion during a drain is handled; the state
 * buffer lives in guest DMA memory and really receives the context.
 */

#include <gtest/gtest.h>

#include <string>

#include "accel/linkedlist_accel.hh"
#include "accel/membench_accel.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

/** Preempt/resume in the middle of any app's job: result intact. */
class PreemptRoundTripTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PreemptRoundTripTest, JobSurvivesContextSwitches)
{
    const std::string app = GetParam();
    // Two tenants on one physical accelerator with a short slice:
    // the first runs a verifiable job across several context
    // switches; the second idles (so switches still happen via the
    // round-robin timer, exercising save AND restore).
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 200 * sim::kTickUs; // many switches per job
    System sys(makeOptimusConfig(app, 1, p));

    AccelHandle &h1 = sys.attach(0, 1ULL << 30);
    AccelHandle &h2 = sys.attachShared(0);

    auto wl = workload::Workload::create(app, h1, 512 * 1024, 17);
    wl->program();
    h1.setupStateBuffer();
    h2.setupStateBuffer();

    auto wl2 = workload::Workload::create(app, h2, 512 * 1024, 18);
    wl2->program();

    h1.start();
    h2.start();
    EXPECT_EQ(h1.wait(), accel::Status::kDone) << app;
    EXPECT_EQ(h2.wait(), accel::Status::kDone) << app;
    EXPECT_TRUE(wl->verify()) << app;
    EXPECT_TRUE(wl2->verify()) << app;
    EXPECT_GE(sys.hv.contextSwitches(), 1u) << app;
    EXPECT_EQ(sys.hv.forcedResets(), 0u) << app;
}

// SW and SSSP restart on resume; BTC/MB/LL/streaming apps carry
// their state. All of them must survive multiplexing.
INSTANTIATE_TEST_SUITE_P(Apps, PreemptRoundTripTest,
                         ::testing::Values("AES", "MD5", "SHA",
                                           "FIR", "GRN", "GRS",
                                           "LL", "MB", "BTC"));

TEST(PreemptionTest, StateBufferReceivesTheContext)
{
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 100 * sim::kTickUs;
    System sys(makeOptimusConfig("LL", 1, p));
    AccelHandle &h1 = sys.attach(0, 1ULL << 30);
    AccelHandle &h2 = sys.attachShared(0);

    auto layout = workload::buildLinkedList(h1, 100000, 5);
    h1.writeAppReg(accel::LinkedlistAccel::kRegHead,
                   layout.head.value());
    h1.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);

    // Remember where the state buffer landed.
    h1.setupStateBuffer();
    std::uint64_t buf_gva =
        h1.mmioRead(accel::reg::kStateBuf);
    ASSERT_NE(buf_gva, 0u);
    h2.setupStateBuffer();

    // Tenant 2 runs a long walk of its own so the round-robin timer
    // actually has someone to switch to.
    auto layout2 = workload::buildLinkedList(h2, 100000, 6);
    h2.writeAppReg(accel::LinkedlistAccel::kRegHead,
                   layout2.head.value());
    h2.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
    h2.start();
    h1.start();
    // Run until at least one context switch has happened.
    h1.pumpUntil(
        [&]() { return sys.hv.contextSwitches() >= 1; });

    // The saved blob's header is in guest memory: status RUNNING.
    std::uint64_t saved_status =
        h1.process().readValue<std::uint64_t>(mem::Gva(buf_gva));
    EXPECT_EQ(saved_status,
              static_cast<std::uint64_t>(accel::Status::kRunning));
    EXPECT_EQ(h1.wait(), accel::Status::kDone);
    EXPECT_EQ(h1.result(), layout.checksum);
}

TEST(PreemptionTest, AcceleratorWithoutStateBufferIsForciblyReset)
{
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 100 * sim::kTickUs;
    System sys(makeOptimusConfig("MB", 1, p));
    AccelHandle &h1 = sys.attach(0, 1ULL << 30);
    AccelHandle &h2 = sys.attachShared(0);

    // h1 never sets a state buffer: it cannot cede on preempt.
    auto wl1 = workload::Workload::create("MB", h1, 8ULL << 20, 1);
    wl1->program();
    h1.start();

    auto wl2 = workload::Workload::create("MB", h2, 1ULL << 20, 2);
    wl2->program();
    h2.setupStateBuffer();
    h2.start();

    // The scheduler must recover: h2 completes, h1 was reset.
    EXPECT_EQ(h2.wait(), accel::Status::kDone);
    EXPECT_GT(sys.hv.forcedResets(), 0u);
    EXPECT_EQ(sys.hv.peekStatus(h1.vaccel()),
              accel::Status::kError);
}

TEST(PreemptionTest, CompletionDuringDrainYieldsDone)
{
    // A job that finishes exactly while a preempt is in flight must
    // surface DONE (not lose the result).
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 50 * sim::kTickUs;
    System sys(makeOptimusConfig("LL", 1, p));
    AccelHandle &h1 = sys.attach(0, 1ULL << 30);
    AccelHandle &h2 = sys.attachShared(0);
    h2.setupStateBuffer();

    // Short walks keep finishing near slice boundaries.
    for (int trial = 0; trial < 5; ++trial) {
        auto layout = workload::buildLinkedList(h1, 120, 50 + trial);
        h1.writeAppReg(accel::LinkedlistAccel::kRegHead,
                       layout.head.value());
        h1.writeAppReg(accel::LinkedlistAccel::kRegCount, 0);
        h1.setupStateBuffer();
        h1.start();
        EXPECT_EQ(h1.wait(), accel::Status::kDone);
        EXPECT_EQ(h1.result(), layout.checksum);
    }
}

TEST(PreemptionTest, SixteenTenantsAllComplete)
{
    // Scalability of temporal multiplexing: 16 virtual accelerators
    // on one physical LL, every job correct.
    sim::PlatformParams p = sim::PlatformParams::harpDefaults();
    p.timeSlice = 100 * sim::kTickUs;
    System sys(makeOptimusConfig("LL", 1, p));

    std::vector<AccelHandle *> handles;
    std::vector<workload::LinkedListLayout> layouts;
    for (int i = 0; i < 16; ++i) {
        handles.push_back(&sys.attach(0, 1ULL << 30));
        layouts.push_back(
            workload::buildLinkedList(*handles.back(), 3000,
                                      900 + i));
        handles.back()->writeAppReg(
            accel::LinkedlistAccel::kRegHead,
            layouts.back().head.value());
        handles.back()->writeAppReg(
            accel::LinkedlistAccel::kRegCount, 0);
        handles.back()->setupStateBuffer();
        handles.back()->start();
    }
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(handles[static_cast<std::size_t>(i)]->wait(),
                  accel::Status::kDone)
            << i;
        EXPECT_EQ(handles[static_cast<std::size_t>(i)]->result(),
                  layouts[static_cast<std::size_t>(i)].checksum)
            << i;
    }
    EXPECT_EQ(sys.hv.forcedResets(), 0u);
}

} // namespace
