/**
 * @file
 * Observability-spine tests: the hierarchical telemetry tree, stat
 * lifetime/move semantics, deterministic JSON export, the trace bus's
 * disabled fast path, the Chrome-trace sink's output validity, and
 * per-VM attribution of DMA trace records.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "exp/builders.hh"
#include "hv/system.hh"
#include "iommu/iommu.hh"
#include "mem/address.hh"
#include "sim/stats.hh"
#include "sim/telemetry.hh"
#include "sim/trace_bus.hh"
#include "sim/trace_sinks.hh"

using namespace optimus;

namespace {

// ----------------------------------------------------------------------
// A tiny recursive-descent JSON validator: enough to prove the
// exporters emit well-formed documents without adding a dependency.

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return _pos == _s.size();
    }

  private:
    bool
    value()
    {
        if (_pos >= _s.size())
            return false;
        switch (_s[_pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (eat(','))
                continue;
            return eat('}');
        }
    }

    bool
    array()
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (eat(','))
                continue;
            return eat(']');
        }
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (_pos < _s.size() && _s[_pos] != '"') {
            if (_s[_pos] == '\\')
                ++_pos;
            ++_pos;
        }
        return eat('"');
    }

    bool
    number()
    {
        std::size_t start = _pos;
        if (_pos < _s.size() && (_s[_pos] == '-' || _s[_pos] == '+'))
            ++_pos;
        while (_pos < _s.size() &&
               (std::isdigit(static_cast<unsigned char>(_s[_pos])) ||
                _s[_pos] == '.' || _s[_pos] == 'e' ||
                _s[_pos] == 'E' || _s[_pos] == '-' ||
                _s[_pos] == '+')) {
            ++_pos;
        }
        return _pos > start;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (_s.compare(_pos, n, lit) != 0)
            return false;
        _pos += n;
        return true;
    }

    bool
    eat(char c)
    {
        if (_pos < _s.size() && _s[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_pos]))) {
            ++_pos;
        }
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

// ----------------------------------------------------------------------
// Telemetry tree

TEST(TelemetryTreeTest, PathsAndGetOrCreate)
{
    sim::Telemetry t("sys");
    EXPECT_EQ(t.root().path(), "");

    sim::TelemetryNode &iotlb = t.node("iommu.iotlb");
    EXPECT_EQ(iotlb.path(), "iommu.iotlb");
    EXPECT_EQ(iotlb.name(), "iotlb");

    // node() is get-or-create: the same path yields the same node,
    // and the intermediate is shared.
    EXPECT_EQ(&t.node("iommu.iotlb"), &iotlb);
    EXPECT_EQ(&t.node("iommu"), iotlb.parent());
    EXPECT_EQ(t.node("iommu").children().size(), 1u);

    // child() on an existing name does not duplicate.
    t.node("iommu").child("iotlb");
    EXPECT_EQ(t.node("iommu").children().size(), 1u);
    EXPECT_EQ(t.node("iommu").find("iotlb"), &iotlb);
    EXPECT_EQ(t.node("iommu").find("nope"), nullptr);
}

TEST(TelemetryTreeTest, StatLifecycleAndMove)
{
    sim::Telemetry t("sys");
    sim::TelemetryNode &n = t.node("grp");

    {
        sim::Counter a(&n, "a", "first");
        EXPECT_EQ(n.stats().size(), 1u);

        // Move: the registration follows the object in place.
        sim::Counter b = std::move(a);
        b += 7;
        EXPECT_EQ(n.stats().size(), 1u);
        std::ostringstream os;
        t.dump(os);
        EXPECT_NE(os.str().find("grp.a 7"), std::string::npos);
    }
    // Destruction unregisters: no dangling pointer in the tree.
    EXPECT_EQ(n.stats().size(), 0u);
    std::ostringstream os;
    t.dump(os);
    EXPECT_EQ(os.str().find("grp.a"), std::string::npos);
}

TEST(TelemetryTreeTest, SetPageBytesKeepsIotlbCountersRegistered)
{
    // Regression: rebuilding the IOTLB (page-size reconfiguration)
    // used to leave dangling Stat pointers in the old registry.
    sim::EventQueue eq;
    sim::PlatformParams params;
    sim::Telemetry t("sys");
    iommu::Iommu mmu(eq, params, {&t.node("iommu"), nullptr});

    mmu.setPageBytes(mem::kPage4K);
    // hits, misses, conflict_evicts, poison_drops.
    EXPECT_EQ(t.node("iommu.iotlb").stats().size(), 4u);

    mmu.pageTable().map(mem::Iova(0), mem::Hpa(mem::kPage2M));
    bool hit = false;
    mmu.translate(mem::Iova(0x40), false,
                  [&](iommu::TranslationResult r) {
                      hit = !r.fault;
                  });
    eq.runAll();
    EXPECT_TRUE(hit);

    // The rebuilt IOTLB's counters are live and dumpable.
    std::ostringstream os;
    t.dump(os);
    EXPECT_NE(os.str().find("iommu.iotlb.misses 1"),
              std::string::npos);
}

// ----------------------------------------------------------------------
// Whole-system exports

/** Two MemBench tenants on separate slots, ready to run. */
std::vector<hv::AccelHandle *>
setupTwoTenantSystem(hv::System &sys)
{
    std::vector<hv::AccelHandle *> handles;
    for (std::uint32_t slot = 0; slot < 2; ++slot) {
        hv::AccelHandle &h = sys.attach(slot, 1ULL << 30);
        exp::setupMembench(h, 1ULL << 20,
                           accel::MembenchAccel::kRead, 7 + slot);
        handles.push_back(&h);
    }
    for (auto *h : handles)
        h->start();
    return handles;
}

TEST(TelemetryJsonTest, DeterministicAcrossIdenticalRuns)
{
    auto run = []() {
        hv::System sys(hv::makeOptimusConfig("MB", 2));
        setupTwoTenantSystem(sys);
        sys.run(sim::kTickMs);
        std::ostringstream os;
        sys.telemetry.writeJson(os);
        return os.str();
    };

    std::string first = run();
    std::string second = run();
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());

    JsonParser p(first);
    EXPECT_TRUE(p.parse()) << first.substr(0, 400);

    // The spine wired every layer in: spot-check one leaf per layer.
    for (const char *key :
         {"\"mem\"", "\"iommu\"", "\"iotlb\"", "\"shell\"",
          "\"fabric\"", "\"hv\"", "\"accel0\"", "\"dma\"",
          "\"vaccel0\"", "\"accesses\"", "\"hits\"",
          "\"dma_reads\"", "\"slices\""}) {
        EXPECT_NE(first.find(key), std::string::npos) << key;
    }
}

TEST(ChromeTraceTest, EmitsValidParsableJson)
{
    hv::System sys(hv::makeOptimusConfig("MB", 2));
    sim::ChromeTraceSink chrome(sys.trace);
    setupTwoTenantSystem(sys);
    sys.run(200 * sim::kTickUs);

    EXPECT_GT(chrome.size(), 0u);
    std::ostringstream os;
    chrome.write(os);
    std::string doc = os.str();

    JsonParser p(doc);
    EXPECT_TRUE(p.parse()) << doc.substr(0, 400);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    // Thread names carry telemetry paths, so traces are addressable.
    EXPECT_NE(doc.find("shell"), std::string::npos);
}

TEST(TraceBusTest, DisabledBusFastPathAddsNoRecords)
{
    // No sink attached: every emission site must bail on the mask
    // check, so a full simulation dispatches exactly zero records.
    hv::System sys(hv::makeOptimusConfig("MB", 2));
    setupTwoTenantSystem(sys);
    sys.run(sim::kTickMs);

    EXPECT_EQ(sys.trace.dispatched(), 0u);

    // Attaching a sink turns the same sites on, mid-simulation.
    sim::CollectSink sink;
    sys.trace.attach(&sink);
    sys.run(sys.eq.now() + 100 * sim::kTickUs);
    EXPECT_GT(sys.trace.dispatched(), 0u);
    EXPECT_EQ(sys.trace.dispatched(), sink.records().size());
    sys.trace.detach(&sink);
}

TEST(AttributionTest, DmaRecordsCarryVmAndProc)
{
    hv::System sys(hv::makeOptimusConfig("MB", 2));
    sim::CollectSink sink;
    sys.trace.attach(&sink,
                     sim::traceMask(sim::TraceKind::kDmaComplete));
    setupTwoTenantSystem(sys);
    sys.run(sim::kTickMs);

    ASSERT_GT(sink.records().size(), 0u);
    bool saw_vm0 = false;
    bool saw_vm1 = false;
    for (const sim::TraceRecord &r : sink.records()) {
        ASSERT_NE(r.vm, sim::kNoOwner);
        EXPECT_EQ(r.proc, 0u); // one process per VM here
        if (r.vm == 0)
            saw_vm0 = true;
        if (r.vm == 1)
            saw_vm1 = true;
    }
    // Both tenants' DMAs are attributed to their own VM.
    EXPECT_TRUE(saw_vm0);
    EXPECT_TRUE(saw_vm1);
    sys.trace.detach(&sink);
}

} // namespace
