/**
 * @file
 * Fleet plane tests: byte-determinism of an N-node cluster across
 * worker pool widths, conservation of work across forced live
 * migrations (nothing lost in flight, blackout measured per move),
 * placement policy behavior, and automatic rebalancing of a hot
 * node.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fleet/fleet.hh"

using namespace optimus;

namespace {

fleet::FleetTenantSpec
shaTenant(const std::string &name, std::uint64_t seed, double rate,
          unsigned home_rack = 0)
{
    fleet::FleetTenantSpec spec;
    spec.svc.name = name;
    spec.svc.app = "SHA";
    spec.svc.bytes = 512;
    spec.svc.seed = seed;
    spec.svc.slot = 0;
    spec.svc.arrivals.kind = svc::ArrivalKind::kPoisson;
    spec.svc.arrivals.ratePerSec = rate;
    spec.svc.sloNs = 300000;
    spec.homeRack = home_rack;
    return spec;
}

fleet::ClusterConfig
twoNodeConfig(fleet::Policy policy = fleet::Policy::kLeastLoaded)
{
    fleet::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.policy = policy;
    cfg.node = hv::makeOptimusConfig("SHA", 1);
    return cfg;
}

struct RunStats
{
    std::uint64_t fingerprint;
    std::uint64_t completed;
    std::uint64_t migrations;
    sim::Tick end;
};

RunStats
mixedLoadRun(unsigned sim_threads)
{
    fleet::Cluster cl(twoNodeConfig(), sim_threads);
    // Count-based placement co-locates t0/t2 on node 0: both heavy,
    // so the rebalancer has real migrations to perform.
    cl.addTenant(shaTenant("t0", 11, 120000.0));
    cl.addTenant(shaTenant("t1", 12, 10000.0));
    cl.addTenant(shaTenant("t2", 13, 120000.0));
    cl.addTenant(shaTenant("t3", 14, 10000.0));
    cl.run(2 * sim::kTickMs);
    return {cl.fingerprint(), cl.fleetCompleted(),
            cl.migrationsCompleted(), cl.now()};
}

TEST(FleetTest, DeterministicAcrossSimThreads)
{
    RunStats st1 = mixedLoadRun(1);
    RunStats st4 = mixedLoadRun(4);
    EXPECT_GT(st1.completed, 0u);
    EXPECT_EQ(st1.fingerprint, st4.fingerprint);
    EXPECT_EQ(st1.completed, st4.completed);
    EXPECT_EQ(st1.migrations, st4.migrations);
    EXPECT_EQ(st1.end, st4.end);
}

TEST(FleetTest, RebalancerMovesLoadOffHotNode)
{
    RunStats st = mixedLoadRun(1);
    EXPECT_GE(st.migrations, 1u);
}

TEST(FleetTest, ForcedMigrationConservesWork)
{
    fleet::ClusterConfig cfg = twoNodeConfig();
    cfg.rebalanceInterval = 0; // forced moves only
    fleet::Cluster cl(cfg);
    std::size_t t = cl.addTenant(shaTenant("t0", 21, 20000.0));

    const sim::Tick period = 400 * sim::kTickUs;
    sim::Tick next = cl.now() + period;
    cl.setBarrierProbe([&cl, &next, t, period]() {
        if (cl.now() < next || cl.now() >= cl.horizon())
            return;
        if (cl.migrateTenant(t, 1 - cl.tenantNode(t)))
            next += period;
    });
    cl.run(2 * sim::kTickMs);

    EXPECT_GE(cl.migrationsCompleted(), 2u);
    EXPECT_EQ(cl.migrationsCompleted(), cl.migrationsStarted());
    EXPECT_GT(cl.migrationBytes(), 0u);
    // Every move contributed one blackout sample, and the blackout
    // is physical (preempt drain + wire time can never be zero).
    EXPECT_EQ(cl.blackoutHist().count(), cl.migrationsCompleted());
    EXPECT_GT(cl.blackoutHist().min(), 0u);
    // Nothing was lost in flight: every admitted request either
    // completed (on whichever node ended up serving it) or was
    // rejected at admission; the fleet drained to empty.
    EXPECT_GT(cl.fleetCompleted(), 0u);
    EXPECT_EQ(cl.fleetArrivals(),
              cl.fleetCompleted() + cl.fleetDropped());
}

TEST(FleetTest, MigrateTenantRejectsBadTargets)
{
    fleet::ClusterConfig cfg = twoNodeConfig();
    cfg.rebalanceInterval = 0;
    fleet::Cluster cl(cfg);
    std::size_t t = cl.addTenant(shaTenant("t0", 31, 1000.0));
    unsigned home = cl.tenantNode(t);
    EXPECT_FALSE(cl.migrateTenant(t, home));  // same node
    EXPECT_FALSE(cl.migrateTenant(t, 99));    // out of range
    EXPECT_TRUE(cl.migrateTenant(t, 1 - home));
    EXPECT_FALSE(cl.migrateTenant(t, home));  // already migrating
    cl.run(200 * sim::kTickUs);
    EXPECT_EQ(cl.tenantNode(t), 1 - home);
    EXPECT_EQ(cl.migrationsCompleted(), 1u);
}

TEST(FleetTest, LocalityPlacementHonorsHomeRack)
{
    fleet::ClusterConfig cfg;
    cfg.nodes = 8;
    cfg.nodesPerRack = 4;
    cfg.policy = fleet::Policy::kLocality;
    cfg.node = hv::makeOptimusConfig("SHA", 1);
    fleet::Cluster cl(cfg);
    for (unsigned i = 0; i < 8; ++i) {
        std::size_t t = cl.addTenant(
            shaTenant("t" + std::to_string(i), 41 + i, 1000.0,
                      i % 2));
        EXPECT_EQ(cl.rackOf(cl.tenantNode(t)), i % 2) << i;
    }
}

TEST(FleetTest, LeastLoadedPlacementSpreadsTenants)
{
    fleet::ClusterConfig cfg = twoNodeConfig();
    cfg.nodes = 4;
    fleet::Cluster cl(cfg);
    for (unsigned i = 0; i < 4; ++i)
        cl.addTenant(
            shaTenant("t" + std::to_string(i), 51 + i, 1000.0));
    // Count-based initial placement: one tenant per node.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(cl.tenantNode(i), i);
}

} // namespace
