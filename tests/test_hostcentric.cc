/**
 * @file
 * Host-centric baseline tests: the DMA engine's configuration cost
 * model, functional correctness of the host-centric SSSP runner, and
 * the ordering relations Fig 1 depends on (virtualization multiplies
 * configuration cost; per-segment configuration loses to marshaling
 * as segment count grows; shared-memory beats both).
 */

#include <gtest/gtest.h>

#include "accel/algo/graph.hh"
#include "hostcentric/dma_engine.hh"
#include "hostcentric/sssp_runner.hh"
#include "sim/event_queue.hh"

using namespace optimus;
using namespace optimus::hostcentric;

namespace {

TEST(DmaEngineTest, ConfigCostDominatesSmallTransfers)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    DmaEngine native(eq, p, false);
    EXPECT_EQ(native.configCost(),
              p.mmioNative + p.mmioNative / 2);

    sim::EventQueue eq2;
    DmaEngine virt(eq2, p, true);
    EXPECT_EQ(virt.configCost(),
              p.mmioNative + p.mmioNative / 2 + p.trapEmulateCost);
    EXPECT_GT(virt.configCost(), 4 * native.configCost());
}

TEST(DmaEngineTest, TransfersSerialize)
{
    sim::EventQueue eq;
    sim::PlatformParams p;
    DmaEngine engine(eq, p, false);
    std::vector<sim::Tick> done;
    engine.transfer(4096, [&]() { done.push_back(eq.now()); });
    engine.transfer(4096, [&]() { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_GT(done[1], done[0]);
    EXPECT_EQ(engine.transfers(), 2u);
    EXPECT_EQ(engine.bytesMoved(), 8192u);
}

class HostCentricSsspTest : public ::testing::Test
{
  protected:
    algo::CsrGraph g = algo::makeRandomGraph(2000, 20000, 63, 3);
    sim::PlatformParams p;
};

TEST_F(HostCentricSsspTest, BothStrategiesComputeCorrectDistances)
{
    auto expect = algo::dijkstra(g, 0);
    for (Strategy s : {Strategy::kConfig, Strategy::kCopy}) {
        for (bool virt : {false, true}) {
            auto r = runHostCentricSssp(g, 0, s, virt, p);
            EXPECT_EQ(r.dist, expect);
            EXPECT_GT(r.rounds, 1u);
        }
    }
}

TEST_F(HostCentricSsspTest, VirtualizationInflatesConfigStrategyMost)
{
    auto cfg_native =
        runHostCentricSssp(g, 0, Strategy::kConfig, false, p);
    auto cfg_virt =
        runHostCentricSssp(g, 0, Strategy::kConfig, true, p);
    auto cpy_native =
        runHostCentricSssp(g, 0, Strategy::kCopy, false, p);
    auto cpy_virt =
        runHostCentricSssp(g, 0, Strategy::kCopy, true, p);

    // Virtualization always costs something.
    EXPECT_GT(cfg_virt.elapsed, cfg_native.elapsed);
    EXPECT_GT(cpy_virt.elapsed, cpy_native.elapsed);
    // The per-segment strategy pays the trap penalty once per
    // segment, so it suffers far more (relative slowdown).
    double cfg_slow = static_cast<double>(cfg_virt.elapsed) /
                      static_cast<double>(cfg_native.elapsed);
    double cpy_slow = static_cast<double>(cpy_virt.elapsed) /
                      static_cast<double>(cpy_native.elapsed);
    EXPECT_GT(cfg_slow, cpy_slow);
}

TEST_F(HostCentricSsspTest, ConfigMakesOneTransferPerSegment)
{
    auto cfg = runHostCentricSssp(g, 0, Strategy::kConfig, false, p);
    auto cpy = runHostCentricSssp(g, 0, Strategy::kCopy, false, p);
    // Config programs the engine for every frontier vertex; Copy
    // only a handful of bulk transfers per round.
    EXPECT_GT(cfg.engineTransfers, 10 * cpy.engineTransfers);
    // Both move the same edge data (plus per-round dist arrays).
    EXPECT_EQ(cfg.rounds, cpy.rounds);
}

TEST_F(HostCentricSsspTest, DensityShiftsTheConfigVsCopyBalance)
{
    auto sparse = algo::makeRandomGraph(2000, 8000, 63, 4);
    auto dense = algo::makeRandomGraph(2000, 64000, 63, 4);

    auto s_cfg =
        runHostCentricSssp(sparse, 0, Strategy::kConfig, true, p);
    auto s_cpy =
        runHostCentricSssp(sparse, 0, Strategy::kCopy, true, p);
    auto d_cfg =
        runHostCentricSssp(dense, 0, Strategy::kConfig, true, p);
    auto d_cpy =
        runHostCentricSssp(dense, 0, Strategy::kCopy, true, p);

    // Denser graphs amortize the per-segment configuration over
    // larger segments, so Config's disadvantage relative to Copy
    // shrinks with density.
    double sparse_ratio = static_cast<double>(s_cfg.elapsed) /
                          static_cast<double>(s_cpy.elapsed);
    double dense_ratio = static_cast<double>(d_cfg.elapsed) /
                         static_cast<double>(d_cpy.elapsed);
    EXPECT_LT(dense_ratio, sparse_ratio);
    // Absolute cost still grows with the amount of pointer chasing.
    EXPECT_GT(d_cfg.elapsed, s_cfg.elapsed);
    EXPECT_GT(d_cpy.elapsed, s_cpy.elapsed);
}

} // namespace
