/**
 * @file
 * Fault-injection plane tests: the FaultPlan grammar, dropped and
 * delayed CCI-P responses with bounded retry, forced IOMMU
 * translation faults, IOTLB poisoning and conflict-evict victim
 * attribution (2 MB pages), wild DMAs caught by auditors, wedge
 * semantics, and the zero-perturbation contract for empty/inert
 * plans.
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "accel/membench_accel.hh"
#include "exp/builders.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"
#include "iommu/iotlb.hh"

using namespace optimus;
using namespace optimus::hv;

namespace {

struct RecordingSink : sim::TraceSink
{
    std::vector<sim::TraceRecord> records;
    void
    record(const sim::TraceBus &, const sim::TraceRecord &r) override
    {
        records.push_back(r);
    }
};

// ------------------------------------------------------ plan grammar

TEST(FaultPlanTest, ParsesDirectives)
{
    auto plan = fault::FaultPlan::parse(
        "hang@2:at=5us;"
        "drop:vm=1,rate=0.25,count=7,seed=42;"
        "delay:extra=500ns,rate=0.5;"
        "poison_iotlb:at=1ms,period=100us,count=3,set=9;"
        "watchdog:deadline=2ms");
    ASSERT_EQ(plan.directives().size(), 5u);

    const auto &h = plan.directives()[0];
    EXPECT_EQ(h.kind, fault::FaultDirective::Kind::kHang);
    EXPECT_EQ(h.slot, 2);
    EXPECT_EQ(h.at, 5 * sim::kTickUs);

    const auto &d = plan.directives()[1];
    EXPECT_EQ(d.kind, fault::FaultDirective::Kind::kDrop);
    EXPECT_EQ(d.vm, 1);
    EXPECT_DOUBLE_EQ(d.rate, 0.25);
    EXPECT_EQ(d.count, 7u);
    EXPECT_EQ(d.seed, 42u);

    const auto &dl = plan.directives()[2];
    EXPECT_EQ(dl.kind, fault::FaultDirective::Kind::kDelay);
    EXPECT_EQ(dl.extra, 500 * sim::kTickNs);

    const auto &p = plan.directives()[3];
    EXPECT_EQ(p.at, sim::kTickMs);
    EXPECT_EQ(p.period, 100 * sim::kTickUs);
    EXPECT_EQ(p.set, 9u);

    const auto &w = plan.directives()[4];
    EXPECT_EQ(w.kind, fault::FaultDirective::Kind::kWatchdog);
    EXPECT_EQ(w.deadline, 2 * sim::kTickMs);

    EXPECT_FALSE(plan.empty());
    EXPECT_TRUE(fault::FaultPlan::parse("").empty());
    EXPECT_EQ(fault::FaultPlan::parse("").summary(), "none");
    EXPECT_NE(plan.summary().find("hang@2"), std::string::npos);
}

TEST(FaultPlanTest, RejectsMalformed)
{
    EXPECT_THROW(fault::FaultPlan::parse("explode@0"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("drop:rate=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("drop:bogus=1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("watchdog"),
                 std::invalid_argument); // deadline= required
    EXPECT_THROW(fault::FaultPlan::parse("delay:rate=0.5"),
                 std::invalid_argument); // extra= required
}

// ------------------------------------------- DMA drop/delay + retry

/** One MB job that runs to a fixed completion target. */
std::unique_ptr<workload::Workload>
mbJob(AccelHandle &h)
{
    return workload::Workload::create("MB", h, 1ULL << 20, 7);
}

TEST(DmaFaultTest, DropIsRetriedAndBounded)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj = exp::installFaults(sys, "drop:rate=1,count=2");
    ASSERT_NE(inj, nullptr);

    AccelHandle &h = sys.attach(0);
    auto wl = mbJob(h);
    wl->program();
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kDone);
    EXPECT_TRUE(wl->verify());

    // Both drops were re-issued after the backoff; neither exhausted
    // the retry budget, so the job never saw an error.
    EXPECT_EQ(sys.platform.shell().dmaDropped(), 2u);
    EXPECT_EQ(sys.platform.shell().dmaRetries(), 2u);
    EXPECT_EQ(inj->injections(), 2u);
}

TEST(DmaFaultTest, ExhaustedRetriesSurfaceAsDeviceError)
{
    System sys(makeOptimusConfig("MB", 1));
    // Every response (including every retry) is dropped: the first
    // transaction burns its full retry budget and errors out.
    auto inj = exp::installFaults(sys, "drop:rate=1");

    AccelHandle &h = sys.attach(0);
    auto wl = mbJob(h);
    wl->program();
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kError);
    EXPECT_NE(h.errorStatus() & accel::errst::kDeviceError, 0u);
    EXPECT_GE(sys.platform.shell().dmaRetries(), 3u);
}

TEST(DmaFaultTest, DelayPreservesResults)
{
    std::uint64_t baseResult = 0;
    sim::Tick baseEnd = 0;
    {
        System sys(makeOptimusConfig("MB", 1));
        AccelHandle &h = sys.attach(0);
        auto wl = mbJob(h);
        wl->program();
        h.start();
        EXPECT_EQ(h.wait(), accel::Status::kDone);
        baseResult = h.result();
        baseEnd = sys.eq.now();
    }
    {
        System sys(makeOptimusConfig("MB", 1));
        auto inj =
            exp::installFaults(sys, "delay:rate=1,extra=500ns");
        AccelHandle &h = sys.attach(0);
        auto wl = mbJob(h);
        wl->program();
        h.start();
        EXPECT_EQ(h.wait(), accel::Status::kDone);
        EXPECT_TRUE(wl->verify());
        // Same answer, strictly later: delays stretch time but never
        // corrupt data.
        EXPECT_EQ(h.result(), baseResult);
        EXPECT_GT(sys.eq.now(), baseEnd);
        EXPECT_GT(inj->injections(), 0u);
    }
}

// ------------------------------------------------- forced IOMMU fault

TEST(IommuFaultTest, ForcedTranslationFaultReachesErrStatus)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj =
        exp::installFaults(sys, "iommu_fault:rate=1,count=1");

    AccelHandle &h = sys.attach(0);
    auto wl = mbJob(h);
    wl->program();
    h.start();
    EXPECT_EQ(h.wait(), accel::Status::kError);
    // The guest observes both the translation fault attribution and
    // the device's resulting error completion.
    EXPECT_NE(h.errorStatus() & accel::errst::kDmaFault, 0u);
    EXPECT_EQ(inj->injections(), 1u);
}

// ------------------------------------------------- IOTLB fault plane

TEST(IotlbFaultTest, PoisonedEntryDropsOnNextLookup)
{
    sim::EventQueue eq;
    sim::Telemetry t("sys");
    iommu::Iotlb tlb(512, mem::kPage4K, {&t.node("iotlb"), nullptr});

    mem::Iova iova(0x5000);
    tlb.insert(iova, mem::Hpa(0x12345000), true, 1, 0);
    EXPECT_TRUE(tlb.lookup(iova).has_value());

    EXPECT_TRUE(tlb.poison(iova));
    // The poisoned entry is silently dropped: the next access misses
    // and forces a fresh walk, exactly like a corrupted TLB line.
    EXPECT_FALSE(tlb.lookup(iova).has_value());
    EXPECT_EQ(tlb.poisonDrops(), 1u);

    tlb.insert(iova, mem::Hpa(0x12345000), true, 1, 0);
    EXPECT_TRUE(tlb.lookup(iova).has_value());

    // Poisoning an empty set reports false.
    EXPECT_FALSE(tlb.poison(mem::Iova(0xabc000)));
}

TEST(IotlbFaultTest, ConflictEvictAttributesVictimUnder2MPages)
{
    sim::EventQueue eq;
    sim::Telemetry t("sys");
    sim::TraceBus bus(eq);
    RecordingSink sink;
    bus.attach(&sink,
               sim::traceMask(sim::TraceKind::kIotlbEvict));
    iommu::Iotlb tlb(512, mem::kPage2M, {&t.node("iotlb"), &bus});

    // 2 MB pages index the 512 sets with IOVA bits 21-29.
    mem::Iova victim(5ULL << 21);
    mem::Iova aggressor((5ULL << 21) + (1ULL << 30));
    ASSERT_EQ(tlb.setIndex(victim), 5u);
    ASSERT_EQ(tlb.setIndex(aggressor), 5u);
    ASSERT_NE(victim.value(), aggressor.value());

    tlb.insert(victim, mem::Hpa(1ULL << 30), true, /*vm=*/1,
               /*proc=*/2);
    tlb.insert(aggressor, mem::Hpa(2ULL << 30), true, /*vm=*/7,
               /*proc=*/8);

    EXPECT_EQ(tlb.conflictEvictions(), 1u);
    ASSERT_EQ(sink.records.size(), 1u);
    const sim::TraceRecord &r = sink.records[0];
    EXPECT_EQ(r.kind, sim::TraceKind::kIotlbEvict);
    EXPECT_EQ(r.arg, 5u);
    // The record names whose entry was lost — the victim — not the
    // tenant whose walk displaced it. Per-tenant conflict attribution
    // is what makes the 128 MB slice-gap analysis possible.
    EXPECT_EQ(r.vm, 1);
    EXPECT_EQ(r.proc, 2);
}

// ------------------------------------------------------- wild DMA

TEST(WildDmaTest, CaughtByAuditorAndCounted)
{
    System sys(makeOptimusConfig("MB", 1));
    auto inj = exp::installFaults(sys, "wild_dma@0:at=10us");

    AccelHandle &h = sys.attach(0);
    exp::setupMembench(h, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    h.start();
    sys.run(sys.eq.now() + 100 * sim::kTickUs);

    EXPECT_EQ(inj->injections(), 1u);
    EXPECT_EQ(inj->wildDmasCaught(), 1u);
}

// ------------------------------------------------ zero perturbation

TEST(ZeroPerturbationTest, EmptyPlanInstallsNothing)
{
    System sys(makeOptimusConfig("MB", 1));
    EXPECT_EQ(exp::installFaults(sys, ""), nullptr);
}

TEST(ZeroPerturbationTest, InertRulesLeaveTimingIdentical)
{
    auto run = [](const char *plan) {
        System sys(makeOptimusConfig("MB", 1));
        auto inj = exp::installFaults(sys, plan);
        AccelHandle &h = sys.attach(0);
        auto wl = mbJob(h);
        wl->program();
        h.start();
        EXPECT_EQ(h.wait(), accel::Status::kDone);
        return std::pair<std::uint64_t, sim::Tick>{h.result(),
                                                   sys.eq.now()};
    };
    auto base = run("");
    // rate=0 attaches the DMA hook but never fires: the hook path
    // itself must cost zero simulated time and change nothing.
    auto hooked = run("drop:rate=0");
    EXPECT_EQ(hooked.first, base.first);
    EXPECT_EQ(hooked.second, base.second);
}

// ------------------------------------------------- wedge semantics

TEST(WedgeTest, WedgeFreezesUntilHardReset)
{
    System sys(makeOptimusConfig("MB", 1));
    AccelHandle &h = sys.attach(0);
    exp::setupMembench(h, 1ULL << 20, accel::MembenchAccel::kRead,
                       3, /*gap=*/64);
    h.start();
    sys.run(sys.eq.now() + 20 * sim::kTickUs);

    accel::Accelerator &dev = sys.platform.accel(0);
    dev.wedge();
    EXPECT_TRUE(dev.wedged());
    std::uint64_t frozen = dev.progress();
    sys.run(sys.eq.now() + 100 * sim::kTickUs);
    EXPECT_EQ(dev.progress(), frozen);

    dev.hardReset();
    EXPECT_FALSE(dev.wedged());
    EXPECT_EQ(dev.status(), accel::Status::kIdle);
}

TEST(WedgeTest, MmioWedgeReadsAllOnesAndDropsWrites)
{
    System sys(makeOptimusConfig("MB", 1));
    accel::Accelerator &dev = sys.platform.accel(0);
    dev.wedgeMmio();
    EXPECT_TRUE(dev.mmioWedged());
    EXPECT_EQ(dev.mmioRead(accel::reg::kStatus), ~0ULL);
    dev.mmioWrite(accel::reg::kCtrl, accel::ctrl::kStart);
    EXPECT_EQ(dev.status(), accel::Status::kIdle); // write dropped
    dev.hardReset();
    EXPECT_FALSE(dev.mmioWedged());
}

} // namespace
