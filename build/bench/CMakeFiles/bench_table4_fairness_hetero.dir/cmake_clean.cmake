file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fairness_hetero.dir/bench_table4_fairness_hetero.cc.o"
  "CMakeFiles/bench_table4_fairness_hetero.dir/bench_table4_fairness_hetero.cc.o.d"
  "bench_table4_fairness_hetero"
  "bench_table4_fairness_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fairness_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
