# Empty compiler generated dependencies file for bench_table4_fairness_hetero.
# This may be replaced when dependencies are built.
