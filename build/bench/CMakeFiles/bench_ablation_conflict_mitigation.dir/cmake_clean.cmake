file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_conflict_mitigation.dir/bench_ablation_conflict_mitigation.cc.o"
  "CMakeFiles/bench_ablation_conflict_mitigation.dir/bench_ablation_conflict_mitigation.cc.o.d"
  "bench_ablation_conflict_mitigation"
  "bench_ablation_conflict_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conflict_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
