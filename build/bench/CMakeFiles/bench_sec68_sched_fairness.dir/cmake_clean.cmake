file(REMOVE_RECURSE
  "CMakeFiles/bench_sec68_sched_fairness.dir/bench_sec68_sched_fairness.cc.o"
  "CMakeFiles/bench_sec68_sched_fairness.dir/bench_sec68_sched_fairness.cc.o.d"
  "bench_sec68_sched_fairness"
  "bench_sec68_sched_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec68_sched_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
