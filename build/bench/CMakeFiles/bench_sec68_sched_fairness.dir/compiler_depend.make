# Empty compiler generated dependencies file for bench_sec68_sched_fairness.
# This may be replaced when dependencies are built.
