# Empty compiler generated dependencies file for bench_fig8_temporal.
# This may be replaced when dependencies are built.
