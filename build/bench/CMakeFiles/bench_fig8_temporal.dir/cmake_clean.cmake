file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_temporal.dir/bench_fig8_temporal.cc.o"
  "CMakeFiles/bench_fig8_temporal.dir/bench_fig8_temporal.cc.o.d"
  "bench_fig8_temporal"
  "bench_fig8_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
