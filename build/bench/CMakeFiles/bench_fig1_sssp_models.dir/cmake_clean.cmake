file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_sssp_models.dir/bench_fig1_sssp_models.cc.o"
  "CMakeFiles/bench_fig1_sssp_models.dir/bench_fig1_sssp_models.cc.o.d"
  "bench_fig1_sssp_models"
  "bench_fig1_sssp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_sssp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
