# Empty dependencies file for bench_fig1_sssp_models.
# This may be replaced when dependencies are built.
