# Empty dependencies file for bench_table3_fairness_homo.
# This may be replaced when dependencies are built.
