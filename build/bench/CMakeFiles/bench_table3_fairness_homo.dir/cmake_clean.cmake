file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fairness_homo.dir/bench_table3_fairness_homo.cc.o"
  "CMakeFiles/bench_table3_fairness_homo.dir/bench_table3_fairness_homo.cc.o.d"
  "bench_table3_fairness_homo"
  "bench_table3_fairness_homo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fairness_homo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
