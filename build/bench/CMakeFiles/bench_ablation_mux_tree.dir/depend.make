# Empty dependencies file for bench_ablation_mux_tree.
# This may be replaced when dependencies are built.
