
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_iommu.cc" "tests/CMakeFiles/test_iommu.dir/test_iommu.cc.o" "gcc" "tests/CMakeFiles/test_iommu.dir/test_iommu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/optimus_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hostcentric/CMakeFiles/optimus_hostcentric.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/optimus_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/optimus_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/ccip/CMakeFiles/optimus_ccip.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/optimus_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/optimus_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/optimus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/optimus_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
