file(REMOVE_RECURSE
  "CMakeFiles/test_hv_edge.dir/test_hv_edge.cc.o"
  "CMakeFiles/test_hv_edge.dir/test_hv_edge.cc.o.d"
  "test_hv_edge"
  "test_hv_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
