file(REMOVE_RECURSE
  "CMakeFiles/test_hv.dir/test_hv.cc.o"
  "CMakeFiles/test_hv.dir/test_hv.cc.o.d"
  "test_hv"
  "test_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
