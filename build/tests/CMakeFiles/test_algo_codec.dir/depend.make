# Empty dependencies file for test_algo_codec.
# This may be replaced when dependencies are built.
