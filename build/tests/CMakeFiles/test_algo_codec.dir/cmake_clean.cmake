file(REMOVE_RECURSE
  "CMakeFiles/test_algo_codec.dir/test_algo_codec.cc.o"
  "CMakeFiles/test_algo_codec.dir/test_algo_codec.cc.o.d"
  "test_algo_codec"
  "test_algo_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
