file(REMOVE_RECURSE
  "CMakeFiles/test_accel_framework.dir/test_accel_framework.cc.o"
  "CMakeFiles/test_accel_framework.dir/test_accel_framework.cc.o.d"
  "test_accel_framework"
  "test_accel_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
