# Empty dependencies file for test_algo_crypto.
# This may be replaced when dependencies are built.
