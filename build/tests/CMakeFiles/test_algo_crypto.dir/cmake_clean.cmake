file(REMOVE_RECURSE
  "CMakeFiles/test_algo_crypto.dir/test_algo_crypto.cc.o"
  "CMakeFiles/test_algo_crypto.dir/test_algo_crypto.cc.o.d"
  "test_algo_crypto"
  "test_algo_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
