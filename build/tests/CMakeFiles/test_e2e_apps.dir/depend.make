# Empty dependencies file for test_e2e_apps.
# This may be replaced when dependencies are built.
