file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_apps.dir/test_e2e_apps.cc.o"
  "CMakeFiles/test_e2e_apps.dir/test_e2e_apps.cc.o.d"
  "test_e2e_apps"
  "test_e2e_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
