file(REMOVE_RECURSE
  "CMakeFiles/test_hostcentric.dir/test_hostcentric.cc.o"
  "CMakeFiles/test_hostcentric.dir/test_hostcentric.cc.o.d"
  "test_hostcentric"
  "test_hostcentric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hostcentric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
