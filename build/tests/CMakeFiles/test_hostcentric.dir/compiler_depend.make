# Empty compiler generated dependencies file for test_hostcentric.
# This may be replaced when dependencies are built.
