# Empty compiler generated dependencies file for test_preemption.
# This may be replaced when dependencies are built.
