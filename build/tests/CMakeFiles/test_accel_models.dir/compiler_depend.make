# Empty compiler generated dependencies file for test_accel_models.
# This may be replaced when dependencies are built.
