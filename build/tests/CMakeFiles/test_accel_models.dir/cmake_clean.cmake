file(REMOVE_RECURSE
  "CMakeFiles/test_accel_models.dir/test_accel_models.cc.o"
  "CMakeFiles/test_accel_models.dir/test_accel_models.cc.o.d"
  "test_accel_models"
  "test_accel_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accel_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
