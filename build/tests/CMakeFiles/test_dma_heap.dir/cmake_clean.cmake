file(REMOVE_RECURSE
  "CMakeFiles/test_dma_heap.dir/test_dma_heap.cc.o"
  "CMakeFiles/test_dma_heap.dir/test_dma_heap.cc.o.d"
  "test_dma_heap"
  "test_dma_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dma_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
