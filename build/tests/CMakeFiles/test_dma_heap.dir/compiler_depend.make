# Empty compiler generated dependencies file for test_dma_heap.
# This may be replaced when dependencies are built.
