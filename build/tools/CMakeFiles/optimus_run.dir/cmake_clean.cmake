file(REMOVE_RECURSE
  "CMakeFiles/optimus_run.dir/optimus_run.cc.o"
  "CMakeFiles/optimus_run.dir/optimus_run.cc.o.d"
  "optimus_run"
  "optimus_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
