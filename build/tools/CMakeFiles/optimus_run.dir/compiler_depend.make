# Empty compiler generated dependencies file for optimus_run.
# This may be replaced when dependencies are built.
