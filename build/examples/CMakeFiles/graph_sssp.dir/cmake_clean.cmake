file(REMOVE_RECURSE
  "CMakeFiles/graph_sssp.dir/graph_sssp.cpp.o"
  "CMakeFiles/graph_sssp.dir/graph_sssp.cpp.o.d"
  "graph_sssp"
  "graph_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
