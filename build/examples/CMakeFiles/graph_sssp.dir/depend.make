# Empty dependencies file for graph_sssp.
# This may be replaced when dependencies are built.
