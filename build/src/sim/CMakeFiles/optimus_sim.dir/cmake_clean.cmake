file(REMOVE_RECURSE
  "CMakeFiles/optimus_sim.dir/event_queue.cc.o"
  "CMakeFiles/optimus_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/optimus_sim.dir/logging.cc.o"
  "CMakeFiles/optimus_sim.dir/logging.cc.o.d"
  "CMakeFiles/optimus_sim.dir/stats.cc.o"
  "CMakeFiles/optimus_sim.dir/stats.cc.o.d"
  "liboptimus_sim.a"
  "liboptimus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
