# Empty dependencies file for optimus_sim.
# This may be replaced when dependencies are built.
