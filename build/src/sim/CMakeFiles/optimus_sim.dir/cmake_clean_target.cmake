file(REMOVE_RECURSE
  "liboptimus_sim.a"
)
