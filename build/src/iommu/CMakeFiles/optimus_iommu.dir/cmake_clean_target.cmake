file(REMOVE_RECURSE
  "liboptimus_iommu.a"
)
