# Empty compiler generated dependencies file for optimus_iommu.
# This may be replaced when dependencies are built.
