file(REMOVE_RECURSE
  "CMakeFiles/optimus_iommu.dir/iommu.cc.o"
  "CMakeFiles/optimus_iommu.dir/iommu.cc.o.d"
  "CMakeFiles/optimus_iommu.dir/iotlb.cc.o"
  "CMakeFiles/optimus_iommu.dir/iotlb.cc.o.d"
  "liboptimus_iommu.a"
  "liboptimus_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
