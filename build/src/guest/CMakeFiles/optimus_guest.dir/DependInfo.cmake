
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/process.cc" "src/guest/CMakeFiles/optimus_guest.dir/process.cc.o" "gcc" "src/guest/CMakeFiles/optimus_guest.dir/process.cc.o.d"
  "/root/repo/src/guest/vm.cc" "src/guest/CMakeFiles/optimus_guest.dir/vm.cc.o" "gcc" "src/guest/CMakeFiles/optimus_guest.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/optimus_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
