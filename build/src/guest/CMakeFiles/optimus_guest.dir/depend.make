# Empty dependencies file for optimus_guest.
# This may be replaced when dependencies are built.
