file(REMOVE_RECURSE
  "liboptimus_guest.a"
)
