file(REMOVE_RECURSE
  "CMakeFiles/optimus_guest.dir/process.cc.o"
  "CMakeFiles/optimus_guest.dir/process.cc.o.d"
  "CMakeFiles/optimus_guest.dir/vm.cc.o"
  "CMakeFiles/optimus_guest.dir/vm.cc.o.d"
  "liboptimus_guest.a"
  "liboptimus_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
