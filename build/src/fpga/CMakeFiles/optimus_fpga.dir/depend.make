# Empty dependencies file for optimus_fpga.
# This may be replaced when dependencies are built.
