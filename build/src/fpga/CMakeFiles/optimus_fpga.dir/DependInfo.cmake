
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/auditor.cc" "src/fpga/CMakeFiles/optimus_fpga.dir/auditor.cc.o" "gcc" "src/fpga/CMakeFiles/optimus_fpga.dir/auditor.cc.o.d"
  "/root/repo/src/fpga/hardware_monitor.cc" "src/fpga/CMakeFiles/optimus_fpga.dir/hardware_monitor.cc.o" "gcc" "src/fpga/CMakeFiles/optimus_fpga.dir/hardware_monitor.cc.o.d"
  "/root/repo/src/fpga/mux_tree.cc" "src/fpga/CMakeFiles/optimus_fpga.dir/mux_tree.cc.o" "gcc" "src/fpga/CMakeFiles/optimus_fpga.dir/mux_tree.cc.o.d"
  "/root/repo/src/fpga/resources.cc" "src/fpga/CMakeFiles/optimus_fpga.dir/resources.cc.o" "gcc" "src/fpga/CMakeFiles/optimus_fpga.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/optimus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ccip/CMakeFiles/optimus_ccip.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/optimus_iommu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
