file(REMOVE_RECURSE
  "liboptimus_fpga.a"
)
