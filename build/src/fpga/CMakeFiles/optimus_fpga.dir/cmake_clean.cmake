file(REMOVE_RECURSE
  "CMakeFiles/optimus_fpga.dir/auditor.cc.o"
  "CMakeFiles/optimus_fpga.dir/auditor.cc.o.d"
  "CMakeFiles/optimus_fpga.dir/hardware_monitor.cc.o"
  "CMakeFiles/optimus_fpga.dir/hardware_monitor.cc.o.d"
  "CMakeFiles/optimus_fpga.dir/mux_tree.cc.o"
  "CMakeFiles/optimus_fpga.dir/mux_tree.cc.o.d"
  "CMakeFiles/optimus_fpga.dir/resources.cc.o"
  "CMakeFiles/optimus_fpga.dir/resources.cc.o.d"
  "liboptimus_fpga.a"
  "liboptimus_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
