# Empty dependencies file for optimus_mem.
# This may be replaced when dependencies are built.
