file(REMOVE_RECURSE
  "liboptimus_mem.a"
)
