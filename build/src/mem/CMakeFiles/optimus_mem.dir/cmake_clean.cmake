file(REMOVE_RECURSE
  "CMakeFiles/optimus_mem.dir/frame_allocator.cc.o"
  "CMakeFiles/optimus_mem.dir/frame_allocator.cc.o.d"
  "CMakeFiles/optimus_mem.dir/host_memory.cc.o"
  "CMakeFiles/optimus_mem.dir/host_memory.cc.o.d"
  "CMakeFiles/optimus_mem.dir/memory_controller.cc.o"
  "CMakeFiles/optimus_mem.dir/memory_controller.cc.o.d"
  "liboptimus_mem.a"
  "liboptimus_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
