
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accelerator.cc" "src/accel/CMakeFiles/optimus_accel.dir/accelerator.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/accelerator.cc.o.d"
  "/root/repo/src/accel/crypto_accels.cc" "src/accel/CMakeFiles/optimus_accel.dir/crypto_accels.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/crypto_accels.cc.o.d"
  "/root/repo/src/accel/dma_port.cc" "src/accel/CMakeFiles/optimus_accel.dir/dma_port.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/dma_port.cc.o.d"
  "/root/repo/src/accel/image_accels.cc" "src/accel/CMakeFiles/optimus_accel.dir/image_accels.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/image_accels.cc.o.d"
  "/root/repo/src/accel/linkedlist_accel.cc" "src/accel/CMakeFiles/optimus_accel.dir/linkedlist_accel.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/linkedlist_accel.cc.o.d"
  "/root/repo/src/accel/membench_accel.cc" "src/accel/CMakeFiles/optimus_accel.dir/membench_accel.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/membench_accel.cc.o.d"
  "/root/repo/src/accel/registry.cc" "src/accel/CMakeFiles/optimus_accel.dir/registry.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/registry.cc.o.d"
  "/root/repo/src/accel/signal_accels.cc" "src/accel/CMakeFiles/optimus_accel.dir/signal_accels.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/signal_accels.cc.o.d"
  "/root/repo/src/accel/sssp_accel.cc" "src/accel/CMakeFiles/optimus_accel.dir/sssp_accel.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/sssp_accel.cc.o.d"
  "/root/repo/src/accel/streaming_accelerator.cc" "src/accel/CMakeFiles/optimus_accel.dir/streaming_accelerator.cc.o" "gcc" "src/accel/CMakeFiles/optimus_accel.dir/streaming_accelerator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/optimus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ccip/CMakeFiles/optimus_ccip.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/optimus_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/optimus_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/optimus_iommu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
