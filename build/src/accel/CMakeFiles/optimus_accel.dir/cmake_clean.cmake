file(REMOVE_RECURSE
  "CMakeFiles/optimus_accel.dir/accelerator.cc.o"
  "CMakeFiles/optimus_accel.dir/accelerator.cc.o.d"
  "CMakeFiles/optimus_accel.dir/crypto_accels.cc.o"
  "CMakeFiles/optimus_accel.dir/crypto_accels.cc.o.d"
  "CMakeFiles/optimus_accel.dir/dma_port.cc.o"
  "CMakeFiles/optimus_accel.dir/dma_port.cc.o.d"
  "CMakeFiles/optimus_accel.dir/image_accels.cc.o"
  "CMakeFiles/optimus_accel.dir/image_accels.cc.o.d"
  "CMakeFiles/optimus_accel.dir/linkedlist_accel.cc.o"
  "CMakeFiles/optimus_accel.dir/linkedlist_accel.cc.o.d"
  "CMakeFiles/optimus_accel.dir/membench_accel.cc.o"
  "CMakeFiles/optimus_accel.dir/membench_accel.cc.o.d"
  "CMakeFiles/optimus_accel.dir/registry.cc.o"
  "CMakeFiles/optimus_accel.dir/registry.cc.o.d"
  "CMakeFiles/optimus_accel.dir/signal_accels.cc.o"
  "CMakeFiles/optimus_accel.dir/signal_accels.cc.o.d"
  "CMakeFiles/optimus_accel.dir/sssp_accel.cc.o"
  "CMakeFiles/optimus_accel.dir/sssp_accel.cc.o.d"
  "CMakeFiles/optimus_accel.dir/streaming_accelerator.cc.o"
  "CMakeFiles/optimus_accel.dir/streaming_accelerator.cc.o.d"
  "liboptimus_accel.a"
  "liboptimus_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
