file(REMOVE_RECURSE
  "liboptimus_accel.a"
)
