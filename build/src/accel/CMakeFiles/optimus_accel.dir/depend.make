# Empty dependencies file for optimus_accel.
# This may be replaced when dependencies are built.
