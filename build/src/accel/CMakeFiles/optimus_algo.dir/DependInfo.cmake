
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/algo/aes128.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/aes128.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/aes128.cc.o.d"
  "/root/repo/src/accel/algo/graph.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/graph.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/graph.cc.o.d"
  "/root/repo/src/accel/algo/image.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/image.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/image.cc.o.d"
  "/root/repo/src/accel/algo/md5.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/md5.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/md5.cc.o.d"
  "/root/repo/src/accel/algo/reed_solomon.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/reed_solomon.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/reed_solomon.cc.o.d"
  "/root/repo/src/accel/algo/sha.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/sha.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/sha.cc.o.d"
  "/root/repo/src/accel/algo/signal.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/signal.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/signal.cc.o.d"
  "/root/repo/src/accel/algo/smith_waterman.cc" "src/accel/CMakeFiles/optimus_algo.dir/algo/smith_waterman.cc.o" "gcc" "src/accel/CMakeFiles/optimus_algo.dir/algo/smith_waterman.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
