# Empty compiler generated dependencies file for optimus_algo.
# This may be replaced when dependencies are built.
