file(REMOVE_RECURSE
  "CMakeFiles/optimus_algo.dir/algo/aes128.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/aes128.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/graph.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/graph.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/image.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/image.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/md5.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/md5.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/reed_solomon.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/reed_solomon.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/sha.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/sha.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/signal.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/signal.cc.o.d"
  "CMakeFiles/optimus_algo.dir/algo/smith_waterman.cc.o"
  "CMakeFiles/optimus_algo.dir/algo/smith_waterman.cc.o.d"
  "liboptimus_algo.a"
  "liboptimus_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
