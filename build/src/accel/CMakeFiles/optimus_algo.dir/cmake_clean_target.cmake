file(REMOVE_RECURSE
  "liboptimus_algo.a"
)
