# Empty compiler generated dependencies file for optimus_hostcentric.
# This may be replaced when dependencies are built.
