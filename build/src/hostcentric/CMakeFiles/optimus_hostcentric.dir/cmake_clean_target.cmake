file(REMOVE_RECURSE
  "liboptimus_hostcentric.a"
)
