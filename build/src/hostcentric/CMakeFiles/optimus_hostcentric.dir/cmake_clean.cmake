file(REMOVE_RECURSE
  "CMakeFiles/optimus_hostcentric.dir/dma_engine.cc.o"
  "CMakeFiles/optimus_hostcentric.dir/dma_engine.cc.o.d"
  "CMakeFiles/optimus_hostcentric.dir/sssp_runner.cc.o"
  "CMakeFiles/optimus_hostcentric.dir/sssp_runner.cc.o.d"
  "liboptimus_hostcentric.a"
  "liboptimus_hostcentric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_hostcentric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
