
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hostcentric/dma_engine.cc" "src/hostcentric/CMakeFiles/optimus_hostcentric.dir/dma_engine.cc.o" "gcc" "src/hostcentric/CMakeFiles/optimus_hostcentric.dir/dma_engine.cc.o.d"
  "/root/repo/src/hostcentric/sssp_runner.cc" "src/hostcentric/CMakeFiles/optimus_hostcentric.dir/sssp_runner.cc.o" "gcc" "src/hostcentric/CMakeFiles/optimus_hostcentric.dir/sssp_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/optimus_algo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
