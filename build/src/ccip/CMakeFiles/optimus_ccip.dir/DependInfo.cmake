
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccip/channel_selector.cc" "src/ccip/CMakeFiles/optimus_ccip.dir/channel_selector.cc.o" "gcc" "src/ccip/CMakeFiles/optimus_ccip.dir/channel_selector.cc.o.d"
  "/root/repo/src/ccip/link.cc" "src/ccip/CMakeFiles/optimus_ccip.dir/link.cc.o" "gcc" "src/ccip/CMakeFiles/optimus_ccip.dir/link.cc.o.d"
  "/root/repo/src/ccip/shell.cc" "src/ccip/CMakeFiles/optimus_ccip.dir/shell.cc.o" "gcc" "src/ccip/CMakeFiles/optimus_ccip.dir/shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/optimus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/optimus_iommu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
