file(REMOVE_RECURSE
  "CMakeFiles/optimus_ccip.dir/channel_selector.cc.o"
  "CMakeFiles/optimus_ccip.dir/channel_selector.cc.o.d"
  "CMakeFiles/optimus_ccip.dir/link.cc.o"
  "CMakeFiles/optimus_ccip.dir/link.cc.o.d"
  "CMakeFiles/optimus_ccip.dir/shell.cc.o"
  "CMakeFiles/optimus_ccip.dir/shell.cc.o.d"
  "liboptimus_ccip.a"
  "liboptimus_ccip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_ccip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
