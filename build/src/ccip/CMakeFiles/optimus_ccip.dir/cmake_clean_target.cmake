file(REMOVE_RECURSE
  "liboptimus_ccip.a"
)
