# Empty compiler generated dependencies file for optimus_ccip.
# This may be replaced when dependencies are built.
