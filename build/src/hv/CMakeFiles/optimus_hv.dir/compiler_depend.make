# Empty compiler generated dependencies file for optimus_hv.
# This may be replaced when dependencies are built.
