
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/dma_heap.cc" "src/hv/CMakeFiles/optimus_hv.dir/dma_heap.cc.o" "gcc" "src/hv/CMakeFiles/optimus_hv.dir/dma_heap.cc.o.d"
  "/root/repo/src/hv/guest_api.cc" "src/hv/CMakeFiles/optimus_hv.dir/guest_api.cc.o" "gcc" "src/hv/CMakeFiles/optimus_hv.dir/guest_api.cc.o.d"
  "/root/repo/src/hv/optimus.cc" "src/hv/CMakeFiles/optimus_hv.dir/optimus.cc.o" "gcc" "src/hv/CMakeFiles/optimus_hv.dir/optimus.cc.o.d"
  "/root/repo/src/hv/platform.cc" "src/hv/CMakeFiles/optimus_hv.dir/platform.cc.o" "gcc" "src/hv/CMakeFiles/optimus_hv.dir/platform.cc.o.d"
  "/root/repo/src/hv/system.cc" "src/hv/CMakeFiles/optimus_hv.dir/system.cc.o" "gcc" "src/hv/CMakeFiles/optimus_hv.dir/system.cc.o.d"
  "/root/repo/src/hv/workloads.cc" "src/hv/CMakeFiles/optimus_hv.dir/workloads.cc.o" "gcc" "src/hv/CMakeFiles/optimus_hv.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/optimus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/optimus_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ccip/CMakeFiles/optimus_ccip.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/optimus_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/optimus_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/optimus_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/optimus_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/optimus_algo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
