file(REMOVE_RECURSE
  "CMakeFiles/optimus_hv.dir/dma_heap.cc.o"
  "CMakeFiles/optimus_hv.dir/dma_heap.cc.o.d"
  "CMakeFiles/optimus_hv.dir/guest_api.cc.o"
  "CMakeFiles/optimus_hv.dir/guest_api.cc.o.d"
  "CMakeFiles/optimus_hv.dir/optimus.cc.o"
  "CMakeFiles/optimus_hv.dir/optimus.cc.o.d"
  "CMakeFiles/optimus_hv.dir/platform.cc.o"
  "CMakeFiles/optimus_hv.dir/platform.cc.o.d"
  "CMakeFiles/optimus_hv.dir/system.cc.o"
  "CMakeFiles/optimus_hv.dir/system.cc.o.d"
  "CMakeFiles/optimus_hv.dir/workloads.cc.o"
  "CMakeFiles/optimus_hv.dir/workloads.cc.o.d"
  "liboptimus_hv.a"
  "liboptimus_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimus_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
