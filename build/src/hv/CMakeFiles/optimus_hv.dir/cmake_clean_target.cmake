file(REMOVE_RECURSE
  "liboptimus_hv.a"
)
