/**
 * @file
 * optimus_run — command-line driver for ad-hoc experiments.
 *
 * Runs N instances of one benchmark accelerator under OPTIMUS or
 * pass-through, with optional temporal oversubscription, and prints
 * throughput, per-tenant fairness, and platform statistics. The same
 * knobs the benchmark harnesses use, without writing C++.
 *
 * Examples:
 *   optimus_run --app MB --jobs 8 --window-ms 2
 *   optimus_run --app LL --mode passthrough --channel upi
 *   optimus_run --app MD5 --jobs 1 --tenants 4 --slice-ms 5 --stats
 *   optimus_run --app MB --jobs 4 --wset-mb 2048 --page-kb 4
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/linkedlist_accel.hh"
#include "accel/membench_accel.hh"
#include "exp/builders.hh"
#include "hv/system.hh"
#include "hv/workloads.hh"

using namespace optimus;

namespace {

struct Options
{
    std::string app = "MB";
    std::string mode = "optimus";    // or "passthrough"
    std::string channel = "auto";    // auto | upi | pcie
    std::uint32_t jobs = 1;          // spatial instances
    std::uint32_t tenants = 1;       // temporal tenants per slot
    double windowMs = 1.0;           // measurement window
    double sliceMs = 0.0;            // 0 = platform default
    std::uint64_t wsetMb = 64;       // MB/LL working set per job
    std::uint64_t pageKb = 2048;     // 2048 (2M) or 4 (4K)
    std::uint32_t arity = 2;         // mux tree arity
    bool noMitigation = false;
    bool stats = false;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: optimus_run [--app NAME] [--mode optimus|passthrough]\n"
        "                   [--jobs N] [--tenants N] [--window-ms X]\n"
        "                   [--slice-ms X] [--wset-mb N] [--page-kb "
        "2048|4]\n"
        "                   [--arity N] [--channel auto|upi|pcie]\n"
        "                   [--no-conflict-mitigation] [--stats]\n");
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options o;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--app") {
            o.app = need(i);
        } else if (a == "--mode") {
            o.mode = need(i);
        } else if (a == "--channel") {
            o.channel = need(i);
        } else if (a == "--jobs") {
            o.jobs = static_cast<std::uint32_t>(atoi(need(i)));
        } else if (a == "--tenants") {
            o.tenants = static_cast<std::uint32_t>(atoi(need(i)));
        } else if (a == "--window-ms") {
            o.windowMs = atof(need(i));
        } else if (a == "--slice-ms") {
            o.sliceMs = atof(need(i));
        } else if (a == "--wset-mb") {
            o.wsetMb = static_cast<std::uint64_t>(atoll(need(i)));
        } else if (a == "--page-kb") {
            o.pageKb = static_cast<std::uint64_t>(atoll(need(i)));
        } else if (a == "--arity") {
            o.arity = static_cast<std::uint32_t>(atoi(need(i)));
        } else if (a == "--no-conflict-mitigation") {
            o.noMitigation = true;
        } else if (a == "--stats") {
            o.stats = true;
        } else {
            usage();
        }
    }
    if (o.jobs < 1 || o.jobs > 8 || o.tenants < 1 || o.windowMs <= 0)
        usage();
    return o;
}

ccip::VChannel
channelOf(const std::string &name)
{
    if (name == "upi")
        return ccip::VChannel::kUpi;
    if (name == "pcie")
        return ccip::VChannel::kPcie0;
    return ccip::VChannel::kAuto;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o = parse(argc, argv);

    sim::PlatformParams params = sim::PlatformParams::harpDefaults();
    params.pageBytes = o.pageKb * 1024;
    params.iotlbConflictMitigation = !o.noMitigation;
    if (o.sliceMs > 0) {
        params.timeSlice =
            static_cast<sim::Tick>(o.sliceMs * sim::kTickMs);
    }

    hv::PlatformConfig cfg =
        o.mode == "passthrough"
            ? hv::makePassthroughConfig(o.app, params)
            : hv::makeOptimusConfig(o.app, o.jobs == 1 ? 1 : 8,
                                    params);
    cfg.treeArity = o.arity;
    hv::System sys(cfg);

    std::printf("optimus_run: %s x%u jobs x%u tenants, %s mode, "
                "%s pages, window %.2f ms\n",
                o.app.c_str(), o.jobs, o.tenants, o.mode.c_str(),
                o.pageKb >= 1024 ? "2M" : "4K", o.windowMs);

    std::vector<hv::AccelHandle *> handles;
    std::vector<std::unique_ptr<hv::workload::Workload>> work;
    for (std::uint32_t j = 0; j < o.jobs; ++j) {
        for (std::uint32_t t = 0; t < o.tenants; ++t) {
            hv::AccelHandle &h = sys.attach(j, 10ULL << 30);
            if (o.app == "MB") {
                exp::setupMembench(
                    h, o.wsetMb << 20,
                    accel::MembenchAccel::kRead, 100 + j * 16 + t);
            } else if (o.app == "LL") {
                exp::setupLinkedList(
                    h, o.wsetMb << 20,
                    std::min<std::uint64_t>((o.wsetMb << 20) / 64,
                                            6000),
                    channelOf(o.channel), 200 + j * 16 + t);
            } else {
                work.push_back(hv::workload::Workload::create(
                    o.app, h, 48ULL << 20, 300 + j * 16 + t));
                work.back()->program();
            }
            if (o.tenants > 1)
                h.setupStateBuffer();
            handles.push_back(&h);
        }
    }
    for (auto *h : handles)
        h->start();

    auto warm = static_cast<sim::Tick>(o.windowMs * sim::kTickMs / 3);
    auto window = static_cast<sim::Tick>(o.windowMs * sim::kTickMs);
    double ns = 0;
    auto ops = exp::measureWindow(sys, handles, warm, window, &ns);

    std::uint64_t total = 0;
    std::uint64_t mn = ~0ULL;
    std::uint64_t mx = 0;
    for (auto v : ops) {
        total += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    std::printf("aggregate: %llu ops in %.3f ms",
                static_cast<unsigned long long>(total), ns / 1e6);
    if (o.app == "MB" || o.app == "LL") {
        std::printf("  (%.2f GB/s; %.0f ns per op per tenant)",
                    exp::gbps(total, ns),
                    static_cast<double>(handles.size()) * ns /
                        static_cast<double>(total ? total : 1));
    }
    std::printf("\nper-tenant ops:");
    for (auto v : ops)
        std::printf(" %llu", static_cast<unsigned long long>(v));
    if (!ops.empty() && total > 0) {
        std::printf("\nfairness range/mean: %.4f\n",
                    static_cast<double>(mx - mn) /
                        (static_cast<double>(total) /
                         static_cast<double>(ops.size())));
    } else {
        std::printf("\n");
    }

    std::printf("hv: %llu traps, %llu hypercalls, %llu context "
                "switches, %llu forced resets\n",
                static_cast<unsigned long long>(sys.hv.traps()),
                static_cast<unsigned long long>(sys.hv.hypercalls()),
                static_cast<unsigned long long>(
                    sys.hv.contextSwitches()),
                static_cast<unsigned long long>(
                    sys.hv.forcedResets()));
    std::printf("iotlb: %llu hits, %llu misses, %llu conflict "
                "evictions, %llu walks (%llu coalesced)\n",
                static_cast<unsigned long long>(
                    sys.platform.iommu().iotlb().hits()),
                static_cast<unsigned long long>(
                    sys.platform.iommu().iotlb().misses()),
                static_cast<unsigned long long>(
                    sys.platform.iommu().iotlb().conflictEvictions()),
                static_cast<unsigned long long>(
                    sys.platform.iommu().walks()),
                static_cast<unsigned long long>(
                    sys.platform.iommu().coalescedWalks()));

    if (o.stats) {
        std::ostringstream os;
        sys.telemetry.dump(os);
        std::fputs(os.str().c_str(), stdout);
    }
    return 0;
}
